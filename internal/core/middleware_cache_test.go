package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// smallEnv is a lighter fixture than newEnv for cache and guard-rail tests:
// 30k orders with a 1% uniform sample (≈300 sample rows).
func smallEnv(t testing.TB, opts Options) *testEnv {
	t.Helper()
	e := engine.NewSeeded(77)
	if err := e.CreateTable("orders", []engine.Column{
		{Name: "order_id", Type: engine.TInt},
		{Name: "city", Type: engine.TString},
		{Name: "product_id", Type: engine.TInt},
		{Name: "price", Type: engine.TFloat},
		{Name: "quantity", Type: engine.TInt},
	}); err != nil {
		t.Fatal(err)
	}
	const n = 30_000
	cities := []string{"ann arbor", "detroit", "chicago", "columbus", "madison"}
	rows := make([][]engine.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []engine.Value{
			int64(i + 1), cities[i%len(cities)], int64(i%50 + 1),
			float64(10 + (i*7919)%100), int64(1 + i%7),
		})
	}
	if err := e.InsertRows("orders", rows); err != nil {
		t.Fatal(err)
	}
	db := drivers.NewGeneric(e)
	cat, err := meta.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	b := sampling.NewBuilder(db, cat)
	if _, err := b.CreateUniform("orders", 0.01); err != nil {
		t.Fatal(err)
	}
	if opts.Confidence == 0 {
		opts = DefaultOptions()
	}
	return &testEnv{db: db, m: New(db, cat, opts), cat: cat}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ a, b string; same bool }{
		{"select count(*) from orders", "SELECT  COUNT(*)\n FROM Orders ;", true},
		{"select count(*) from orders", "select count(*) from orders where city = 'x'", false},
		{"select 'ABC' from orders", "select 'abc' from orders", false}, // literals preserved
		{"select 'it''s' from t", "select   'it''s'  from T", true},
	}
	for _, c := range cases {
		na, nb := normalizeSQL(c.a), normalizeSQL(c.b)
		if (na == nb) != c.same {
			t.Errorf("normalizeSQL(%q)=%q vs normalizeSQL(%q)=%q, want same=%v",
				c.a, na, c.b, nb, c.same)
		}
	}
}

func TestPlanCacheHitsAndVersionInvalidation(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	q := "select city, count(*) as c from orders group by city"

	a1 := env.approx(t, q)
	h0, m0 := env.m.CacheStats()
	if h0 != 0 || m0 == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want miss-only", h0, m0)
	}
	// Differently-formatted same shape must hit.
	a2 := env.approx(t, "SELECT city,  COUNT(*) AS c FROM orders GROUP BY city;")
	h1, _ := env.m.CacheStats()
	if h1 != h0+1 {
		t.Fatalf("reformatted repeat did not hit the cache (hits %d -> %d)", h0, h1)
	}
	if len(a1.Rows) != len(a2.Rows) {
		t.Fatalf("cached answer shape differs: %d vs %d rows", len(a1.Rows), len(a2.Rows))
	}
	for r := range a1.Rows {
		for c := range a1.Rows[r] {
			if engine.GroupKey(a1.Rows[r][c]) != engine.GroupKey(a2.Rows[r][c]) {
				t.Fatalf("cached answer differs at [%d][%d]: %v vs %v", r, c, a1.Rows[r][c], a2.Rows[r][c])
			}
		}
	}

	// Sample DDL bumps the catalog version; the next run must miss and
	// replan against the new catalog.
	ver := env.cat.Version()
	b := sampling.NewBuilder(env.db, env.cat)
	if _, err := b.CreateStratified("orders", []string{"city"}, 0.02); err != nil {
		t.Fatal(err)
	}
	if env.cat.Version() <= ver {
		t.Fatalf("catalog version did not bump: %d -> %d", ver, env.cat.Version())
	}
	_, mBefore := env.m.CacheStats()
	a3 := env.approx(t, q)
	_, mAfter := env.m.CacheStats()
	if mAfter != mBefore+1 {
		t.Fatalf("post-DDL run should miss (misses %d -> %d)", mBefore, mAfter)
	}
	// The replanned query should now pick the stratified sample (it covers
	// the grouping column and scores higher).
	foundStratified := false
	for _, st := range a3.SampleTables {
		if strings.Contains(st, "stratified") {
			foundStratified = true
		}
	}
	if !foundStratified {
		t.Fatalf("replanned query ignored the new stratified sample: %v", a3.SampleTables)
	}
}

func TestPlanCachePassthroughEntries(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	// No aggregates: deterministic passthrough, cached as such.
	q := "select city from orders limit 3"
	if a := env.approx(t, q); a.Approximate {
		t.Fatal("non-aggregate query approximated")
	}
	a2, handled, err := env.m.QueryCached(q)
	if err != nil || !handled {
		t.Fatalf("passthrough shape not cached: handled=%v err=%v", handled, err)
	}
	if a2.Approximate || len(a2.Rows) != 3 {
		t.Fatalf("cached passthrough wrong: approx=%v rows=%d", a2.Approximate, len(a2.Rows))
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DisablePlanCache = true
	env := smallEnv(t, opts)
	q := "select count(*) from orders"
	env.approx(t, q)
	env.approx(t, q)
	if h, m := env.m.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache recorded traffic: hits=%d misses=%d", h, m)
	}
}

func TestInvalidateStatsOnDML(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	q := "select count(*) from orders"
	env.approx(t, q)
	env.approx(t, q)
	if h, _ := env.m.CacheStats(); h != 1 {
		t.Fatalf("expected one hit, got %d", h)
	}
	// DML through the middleware flushes the plan cache (base data moved).
	if _, err := env.m.Query("insert into orders values (990001, 'flint', 1, 10.0, 1)"); err != nil {
		t.Fatal(err)
	}
	_, m0 := env.m.CacheStats()
	env.approx(t, q)
	if _, m1 := env.m.CacheStats(); m1 != m0+1 {
		t.Fatalf("post-DML run should miss (misses %d -> %d)", m0, m1)
	}
}

// TestPostExecGuardCountsPlanSampleRows is the regression test for the
// guard-rail fix: the post-execution high-cardinality guard must compare
// group counts against the chosen plan's sample rows. The old code divided
// by cumulative RowsScanned, which included the extreme (min/max) item's
// full base-table scan — 30k rows here against ~350 groups, so the guard
// could never fire for extreme-bearing queries even though the ~300-row
// sample spreads absurdly thin.
func TestPostExecGuardCountsPlanSampleRows(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	// quantity*1000+product_id has ~350 distinct values — a non-column
	// grouping expression the ndv pre-probe skips.
	q := `select quantity * 1000 + product_id as g, sum(price) as s, max(price) as mx
	      from orders group by quantity * 1000 + product_id`
	a := env.approx(t, q)
	if a.Approximate {
		t.Fatalf("high-cardinality extreme query was approximated: %d groups over ~300 sample rows",
			len(a.Rows))
	}
	// Sanity check: a low-cardinality grouping through the same path stays
	// approximate (the guard must not over-fire).
	a2 := env.approx(t, `select city, sum(price) as s, max(price) as mx from orders group by city`)
	if !a2.Approximate {
		t.Fatal("low-cardinality extreme query was not approximated")
	}
}

// TestGroupCardinalityProbeResolvesOccurrence is the regression test for
// the ndv-probe fix: a qualified GROUP BY t.col must probe the table chosen
// for t's occurrence, never a same-named column on another occurrence.
func TestGroupCardinalityProbeResolvesOccurrence(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	// A dimension table whose "city" column has far more distinct values
	// than orders.city (5): probing the wrong occurrence flips the verdict.
	e := env.db.(*drivers.Driver).Engine()
	if err := e.CreateTable("cities", []engine.Column{
		{Name: "city", Type: engine.TString},
		{Name: "zip", Type: engine.TInt},
	}); err != nil {
		t.Fatal(err)
	}
	var rows [][]engine.Value
	for i := 0; i < 5000; i++ {
		rows = append(rows, []engine.Value{fmt.Sprintf("city-%d", i), int64(i)})
	}
	if err := e.InsertRows("cities", rows); err != nil {
		t.Fatal(err)
	}

	infos, _ := env.cat.Snapshot()
	var uniform *meta.SampleInfo
	for i := range infos {
		if infos[i].Type == sqlparser.UniformSample {
			uniform = &infos[i]
		}
	}
	if uniform == nil {
		t.Fatal("no uniform sample registered")
	}
	ordersOcc := &tableOccurrence{Alias: "o", Base: "orders", JoinCols: map[string][]joinPeer{}}
	citiesOcc := &tableOccurrence{Alias: "c", Base: "cities", JoinCols: map[string][]joinPeer{}}
	plan := CandidatePlan{Choices: map[string]TableChoice{
		"o": {Occurrence: ordersOcc, Sample: uniform},
		"c": {Occurrence: citiesOcc},
	}}

	parse := func(sql string) *sqlparser.SelectStmt {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*sqlparser.SelectStmt)
	}
	// Qualified c.city: must probe the cities base table (ndv 5000 ≫
	// 8% of ~300 sample rows) and decline.
	selHigh := parse("select c.city, count(*) from orders o inner join cities c on o.city = c.city group by c.city")
	decline, err := env.m.groupCardinalityTooHigh(context.Background(), selHigh, plan)
	if err != nil || !decline {
		t.Fatalf("qualified c.city: decline=%v err=%v, want decline=true", decline, err)
	}
	// Qualified o.city: must probe o's chosen table — the uniform sample,
	// whose city column has 5 distinct values — and accept. Before the fix
	// the unqualified probe could land on cities first ("c" sorts before
	// "o") and wrongly decline.
	selLow := parse("select o.city, count(*) from orders o inner join cities c on o.city = c.city group by o.city")
	decline, err = env.m.groupCardinalityTooHigh(context.Background(), selLow, plan)
	if err != nil || decline {
		t.Fatalf("qualified o.city: decline=%v err=%v, want decline=false", decline, err)
	}
}

// TestAppendErrorColumnsDedup is the regression test for the error-column
// collision fix: a user alias already named <agg>_err must not be shadowed
// by the appended error column.
func TestAppendErrorColumnsDedup(t *testing.T) {
	a := &Answer{
		Cols: []string{"c", "c_err"},
		Rows: [][]engine.Value{{10.0, "user-value"}},
		StdErr: [][]float64{
			{2.0, math.NaN()},
		},
		Confidence: 0.95,
	}
	appendErrorColumns(a)
	if len(a.Cols) != 3 {
		t.Fatalf("cols after append: %v", a.Cols)
	}
	if a.Cols[2] == "c_err" {
		t.Fatalf("appended error column collides with user alias: %v", a.Cols)
	}
	if a.Cols[2] != "c_err2" {
		t.Fatalf("expected de-duplicated name c_err2, got %q", a.Cols[2])
	}
	if a.Rows[0][1] != "user-value" {
		t.Fatalf("user column clobbered: %v", a.Rows[0])
	}

	// End-to-end: aliases chosen to collide with both generated names.
	env := smallEnv(t, func() Options { o := DefaultOptions(); o.ErrorColumns = true; return o }())
	ans := env.approx(t, "select count(*) as c, sum(price) as c_err from orders")
	seen := map[string]bool{}
	for _, col := range ans.Cols {
		if seen[strings.ToLower(col)] {
			t.Fatalf("duplicate output column %q in %v", col, ans.Cols)
		}
		seen[strings.ToLower(col)] = true
	}
	if len(ans.Cols) != 4 {
		t.Fatalf("expected 2 value + 2 error columns, got %v", ans.Cols)
	}
}

// TestConcurrentMiddlewareQueriesMatchSerial runs the same shapes serially
// and from many goroutines; answers must be byte-identical (samples are
// fixed, the rewritten queries are deterministic, and cached plans are
// cloned on hit). Run under -race this also exercises the cache's locking.
func TestConcurrentMiddlewareQueriesMatchSerial(t *testing.T) {
	env := smallEnv(t, DefaultOptions())
	queries := []string{
		"select count(*) as c from orders",
		"select city, sum(price) as s from orders group by city",
		"select city, avg(price) as a, count(*) as c from orders group by city",
		"select quantity, sum(price * quantity) as v from orders where price > 50 group by quantity",
		"select city from orders limit 5",
	}
	serial := make([]string, len(queries))
	for i, q := range queries {
		serial[i] = answerFingerprint(t, env, q)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(queries)*3)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, q := range queries {
					got := answerFingerprint(t, env, q)
					if got != serial[i] {
						errs <- fmt.Errorf("query %d diverged under concurrency", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if h, _ := env.m.CacheStats(); h == 0 {
		t.Fatal("concurrent repeats never hit the plan cache")
	}
}

func answerFingerprint(t testing.TB, env *testEnv, q string) string {
	t.Helper()
	a, err := env.m.Query(q)
	if err != nil {
		t.Errorf("query %q: %v", q, err)
		return "error"
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(a.Cols, ","))
	sb.WriteByte('|')
	for _, row := range a.Rows {
		for _, v := range row {
			sb.WriteString(engine.GroupKey(v))
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}
