package core

import (
	"context"
	"errors"
	"math"
	"strings"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/faultpoint"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// This file implements accuracy-driven progressive execution over
// block-partitioned scrambles. The chosen sample plan is run block-prefix by
// block-prefix (a doubling schedule, so total work stays within ~2x of the
// stopping prefix), the variational-subsampling standard errors are
// re-estimated after each prefix, and execution stops as soon as the
// caller's target relative error is met — the anytime behavior online
// aggregation systems offer, expressed purely through SQL rewriting: each
// prefix adds a `_vdb_block <= K` predicate and folds the prefix's row
// fraction into the Horvitz-Thompson weights, so every partial answer is
// unbiased. Plans that cannot run progressively (passthrough, multi-plan
// merges, extreme statistics, count-distinct, nested aggregate blocks, or
// samples built without blocks) fall back to the single-shot path.

// progressiveInfo is the cached handle for block-prefix execution of one
// plan entry. Read-only after buildEntry, like the rest of the entry.
type progressiveInfo struct {
	plan        CandidatePlan
	itemIdx     []int
	alias       string // plan-choices alias of the single sampled occurrence
	blockCounts []int64
	totalRows   int64
}

// ProgressiveUpdate is one block prefix's worth of progressive execution,
// delivered to the QueryProgressive callback. Final marks the answer the
// call also returns (after guard rails ran).
type ProgressiveUpdate struct {
	Answer        *Answer
	BlocksScanned int
	BlocksTotal   int
	Final         bool
}

// ProgressiveCallback observes per-prefix answers; returning false stops
// execution early (the current prefix's answer becomes final).
type ProgressiveCallback func(ProgressiveUpdate) bool

// QueryCachedProgressive answers sql progressively from the plan cache,
// mirroring QueryCached's contract: handled is false on a miss.
func (m *Middleware) QueryCachedProgressive(sql string, targetRelErr float64, cb ProgressiveCallback) (a *Answer, handled bool, err error) {
	return m.QueryCachedProgressiveContext(context.Background(), sql, targetRelErr, cb)
}

// QueryCachedProgressiveContext is QueryCachedProgressive honoring the
// caller's context; see QuerySelectProgressiveContext for the deadline and
// catalog-drift contract.
func (m *Middleware) QueryCachedProgressiveContext(ctx context.Context, sql string, targetRelErr float64, cb ProgressiveCallback) (a *Answer, handled bool, err error) {
	ctx = m.budgetCtx(ctx)
	defer containPanic(&err, sql)
	if m.plans == nil {
		return nil, false, nil
	}
	e := m.plans.lookup(normalizeSQL(sql), m.cat.Version())
	if e == nil {
		return nil, false, nil
	}
	a, err = m.executeProgressive(ctx, e, sql, targetRelErr, cb)
	return a, true, err
}

// QuerySelectProgressive runs a parsed SELECT through the AQP pipeline with
// progressive execution. original must be the SQL sel was parsed from.
func (m *Middleware) QuerySelectProgressive(sel *sqlparser.SelectStmt, original string, targetRelErr float64, cb ProgressiveCallback) (*Answer, error) {
	return m.QuerySelectProgressiveContext(context.Background(), sel, original, targetRelErr, cb)
}

// QuerySelectProgressiveContext is QuerySelectProgressive honoring the
// caller's context. Cancellation aborts with ctx.Err(). A deadline expiring
// after at least one block prefix completed degrades gracefully: the last
// completed prefix's unbiased partial answer is returned with
// DeadlineDegraded set instead of an error (the anytime contract — a partial
// answer with honest error bars beats no answer). Sample DDL racing the
// query surfaces as ErrCatalogChanged between prefixes.
func (m *Middleware) QuerySelectProgressiveContext(ctx context.Context, sel *sqlparser.SelectStmt, original string, targetRelErr float64, cb ProgressiveCallback) (a *Answer, err error) {
	ctx = m.budgetCtx(ctx)
	defer containPanic(&err, original)
	var gen int64
	if m.plans != nil {
		m.plans.countMiss()
		gen = m.plans.generation()
	}
	entry, direct, err := m.buildEntry(ctx, sel, original)
	if err != nil {
		return nil, err
	}
	if direct != nil {
		finalUpdate(cb, direct)
		return direct, nil
	}
	if m.plans != nil {
		m.plans.put(normalizeSQL(original), entry, gen)
	}
	return m.executeProgressive(ctx, entry, original, targetRelErr, cb)
}

// executeProgressive runs a plan entry block-prefix by block-prefix,
// stopping once the target relative error is met. Entries without a
// progressive handle run single-shot.
func (m *Middleware) executeProgressive(ctx context.Context, e *planEntry, original string, target float64, cb ProgressiveCallback) (*Answer, error) {
	p := e.prog
	if p == nil {
		a, err := m.executeEntry(ctx, e, original)
		if err == nil {
			finalUpdate(cb, a)
		}
		return a, err
	}

	total := len(p.blockCounts)
	schedule := blockSchedule(total, target)
	var cumRows, cumNanos int64
	var rewritten []string
	// lastPartial is the most recent completed prefix's unbiased partial
	// answer — the deadline-degraded result if time runs out mid-ramp.
	var lastPartial *Answer
	for idx := 0; idx < len(schedule); idx++ {
		// Sample DDL between prefixes invalidates the plan: later prefixes
		// would mix block layouts across catalog versions, silently biasing
		// the estimate. Surface it as a typed error instead.
		if m.cat.Version() != e.version {
			return nil, ErrCatalogChanged
		}
		if err := faultpoint.Hit(faultpoint.SiteCoreProgressivePrefix); err != nil {
			return nil, err
		}
		bound := schedule[idx]
		frac := float64(prefixRows(p.blockCounts, bound)) / float64(p.totalRows)
		ro, err := RewriteWithBlocks(e.flat, p.plan, p.itemIdx, true, &BlockContext{
			Alias: p.alias, Bound: int64(bound), Frac: frac,
		})
		if err != nil {
			return m.passthrough(ctx, original, PassOther)
		}
		sqlText := drivers.Render(m.db, ro.Stmt)
		rs, elapsed, err := m.db.QueryTimedContext(ctx, sqlText)
		if err != nil {
			// A deadline expiring mid-ramp degrades gracefully when at least
			// one prefix completed: that prefix's answer is unbiased (its
			// Horvitz-Thompson weights already fold in the prefix fraction),
			// so returning it flagged beats returning nothing.
			if errors.Is(err, context.DeadlineExceeded) && lastPartial != nil {
				return m.degradeAnswer(lastPartial, cb), nil
			}
			if queryAborted(err) {
				return nil, err
			}
			// Same contract as executeEntry: a stale catalog or dialect
			// corner case falls back to exact execution.
			return m.passthrough(ctx, original, PassOther)
		}
		cumNanos += elapsed.Nanoseconds()
		cumRows += rs.RowsScanned
		rewritten = append(rewritten, sqlText)

		if err := faultpoint.Hit(faultpoint.SiteCoreMergePrefix); err != nil {
			return nil, err
		}
		answer := &Answer{
			Approximate:   true,
			Status:        Supported,
			Confidence:    m.opts.Confidence,
			SampleTables:  append([]string(nil), ro.SampleTables...),
			RewrittenSQL:  append([]string(nil), rewritten...),
			ElapsedNanos:  cumNanos,
			RowsScanned:   cumRows,
			BlocksScanned: bound,
			BlocksTotal:   total,
		}
		mg := newMerger(len(e.names))
		mg.add(rs, ro.Columns)
		answer.Cols = append([]string(nil), e.names...)
		answer.Rows, answer.StdErr = mg.result()
		lastPartial = answer

		last := idx == len(schedule)-1
		met := target > 0 && minSubsamples(rs, ro.Columns) >= minStopSubsamples &&
			accuracyMet(answer, p.itemIdx, target)
		stop := last || met
		if !stop && cb != nil && !cb(ProgressiveUpdate{
			Answer: answer, BlocksScanned: bound, BlocksTotal: total,
		}) {
			stop = true // caller accepted this prefix's accuracy
		}
		if stop {
			final, err := m.finishEntryAnswer(ctx, e, answer, original)
			if err != nil && errors.Is(err, context.DeadlineExceeded) {
				// The guard rails' exact re-run ran out of time; the
				// completed prefix itself is still a valid partial.
				return m.degradeAnswer(answer, cb), nil
			}
			if err == nil {
				finalUpdate(cb, final)
			}
			return final, err
		}
		// Accuracy forecast: the variational stderr shrinks roughly with
		// 1/sqrt(rows scanned). When even the full sample cannot plausibly
		// reach the target, skip the intermediate prefixes — the doubling
		// ramp would re-scan the sample several times for nothing.
		if re := answer.MaxRelativeError(); re > 0 && !math.IsNaN(re) {
			scannedRows := float64(prefixRows(p.blockCounts, bound))
			if scannedRows*(re/target)*(re/target) > float64(p.totalRows) {
				idx = len(schedule) - 2 // next iteration runs the full prefix
			}
		}
	}
	// Unreachable: the schedule always ends with the full prefix.
	return m.executeEntry(ctx, e, original)
}

// degradeAnswer finalizes a completed block-prefix partial after a deadline
// expiry: the answer is flagged DeadlineDegraded and only the user-visible
// error columns are applied — the guard rails (group-cardinality check,
// accuracy contract) are skipped because both can demand an exact re-run
// there is no time left to pay for.
func (m *Middleware) degradeAnswer(partial *Answer, cb ProgressiveCallback) *Answer {
	partial.DeadlineDegraded = true
	if m.opts.ErrorColumns {
		appendErrorColumns(partial)
	}
	finalUpdate(cb, partial)
	return partial
}

// minStopSubsamples is the fewest subsamples any group may be estimated
// from before an early stop is allowed. Variational subsampling's stderr is
// a stddev across per-subsample estimates; over one or two subsamples it
// degenerates (a single value has zero spread) and would fake perfect
// accuracy on barely-scanned joins.
const minStopSubsamples = 8

// minSubsamples returns the smallest per-group contributing-subsample count
// of a progressive partial result (its ColSubCount column), or 0 when the
// column is absent or empty.
func minSubsamples(rs *engine.ResultSet, cols []OutputCol) int64 {
	ci := -1
	for i, oc := range cols {
		if oc.Kind == ColSubCount {
			ci = i
		}
	}
	if ci < 0 || len(rs.Rows) == 0 {
		return 0
	}
	min := int64(0)
	for r, row := range rs.Rows {
		if ci >= len(row) {
			return 0
		}
		n, ok := engine.ToInt(row[ci])
		if !ok {
			return 0
		}
		if r == 0 || n < min {
			min = n
		}
	}
	return min
}

// accuracyMet decides early stopping: the prefix answer must be non-empty
// and carry a finite standard error for EVERY aggregate cell — a NaN stderr
// (e.g. a group observed in a single subsample) means the error is unknown,
// not zero, and MaxRelativeError would silently skip it. Only then is the
// worst relative error compared to the target. Zero-valued aggregate cells
// have no defined relative error and are skipped, matching the accuracy
// contract's semantics.
func accuracyMet(a *Answer, aggIdx []int, target float64) bool {
	if len(a.Rows) == 0 {
		return false
	}
	for r := range a.Rows {
		for _, c := range aggIdx {
			if c >= len(a.StdErr[r]) || math.IsNaN(a.StdErr[r][c]) {
				return false
			}
		}
	}
	return a.MaxRelativeError() <= target
}

// blockSchedule returns the block-prefix bounds to execute: a doubling ramp
// ending at the full prefix. A non-positive target means "exact variational
// answer" — one full-prefix execution, no early stopping to attempt.
func blockSchedule(total int, target float64) []int {
	if total <= 1 || target <= 0 {
		return []int{total}
	}
	var s []int
	for k := 1; k < total; k *= 2 {
		s = append(s, k)
	}
	return append(s, total)
}

// prefixRows sums the row counts of blocks 1..bound.
func prefixRows(counts []int64, bound int) int64 {
	if bound > len(counts) {
		bound = len(counts)
	}
	var n int64
	for _, c := range counts[:bound] {
		n += c
	}
	return n
}

func finalUpdate(cb ProgressiveCallback, a *Answer) {
	if cb != nil && a != nil {
		cb(ProgressiveUpdate{
			Answer:        a,
			BlocksScanned: a.BlocksScanned,
			BlocksTotal:   a.BlocksTotal,
			Final:         true,
		})
	}
}

// progressiveInfoFor decides whether a planned query can execute
// block-prefix by block-prefix and returns its handle (nil when not):
//
//   - variational error estimation only (the stopping rule needs stderrs);
//   - a single consolidated plan with no exact extreme items (multi-plan
//     merges would need coordinated prefixes);
//   - exactly one sampled occurrence, whose sample was built with blocks;
//   - no count-distinct aggregates (a row prefix of a universe sample
//     undercounts distinct keys in a way the row fraction cannot correct);
//   - no nested aggregate blocks (complete-group universe semantics do not
//     survive prefix thinning).
func (m *Middleware) progressiveInfoFor(flat *sqlparser.SelectStmt, plans []ConsolidatedPlan, extremeIdx []int) *progressiveInfo {
	if m.opts.Method != MethodVariational {
		return nil
	}
	if len(plans) != 1 || len(extremeIdx) > 0 {
		return nil
	}
	if hasNestedAggregates(flat.From) {
		return nil
	}
	cp := plans[0]
	var alias string
	var si *meta.SampleInfo
	//verdict:unordered bails out unless exactly one sampled choice exists, so order cannot matter
	for a, c := range cp.Plan.Choices {
		if c.Sample == nil {
			continue
		}
		if si != nil {
			return nil // progressive prefixes cover exactly one sample
		}
		alias, si = a, c.Sample
	}
	if si == nil || si.BlockRows <= 0 || len(si.BlockCounts) == 0 {
		return nil
	}
	total := si.TotalBlockRows()
	if total <= 0 {
		return nil
	}
	exprs := make([]sqlparser.Expr, 0, len(cp.ItemIdx)+len(flat.OrderBy)+1)
	for _, i := range cp.ItemIdx {
		exprs = append(exprs, flat.Items[i].Expr)
	}
	if flat.Having != nil {
		exprs = append(exprs, flat.Having)
	}
	for _, ob := range flat.OrderBy {
		exprs = append(exprs, ob.Expr)
	}
	for _, e := range exprs {
		for _, fc := range aggsIn(e) {
			if classifyAgg(fc) == AggCountDistinct {
				return nil
			}
		}
	}
	return &progressiveInfo{
		plan:        cp.Plan,
		itemIdx:     cp.ItemIdx,
		alias:       strings.ToLower(alias),
		blockCounts: si.BlockCounts,
		totalRows:   total,
	}
}

// hasNestedAggregates reports whether a FROM tree contains a derived table
// with aggregates (rewritten via the Section 5.2 variational-table path).
func hasNestedAggregates(t sqlparser.TableExpr) bool {
	switch tt := t.(type) {
	case *sqlparser.DerivedTable:
		return sqlparser.HasAggregates(tt.Select) || hasNestedAggregates(tt.Select.From)
	case *sqlparser.JoinExpr:
		return hasNestedAggregates(tt.Left) || hasNestedAggregates(tt.Right)
	}
	return false
}
