// Package core implements VerdictDB's middleware: the AQP rewriter that
// turns an analytic query into a single SQL statement whose standard
// execution yields an unbiased approximate answer plus error estimates
// (Sections 4-5), the sample planner that picks sample tables under an I/O
// budget (Appendix E), and the answer rewriter that scales results and
// enforces accuracy contracts (Section 2.4).
package core

import (
	"fmt"
	"strings"

	"verdictdb/internal/sqlparser"
)

// SupportStatus classifies whether the middleware can speed up a query
// (Table 1). Unsupported queries pass through to the engine unchanged.
type SupportStatus int

// Support classifications.
const (
	Supported SupportStatus = iota
	// PassNoAggregates: no aggregate functions and no GROUP BY.
	PassNoAggregates
	// PassExistsSubquery: EXISTS / IN-subquery predicates (Section 2.2:
	// VerdictDB does not approximate these).
	PassExistsSubquery
	// PassSetOperation: UNION and friends.
	PassSetOperation
	// PassDistinctSelect: SELECT DISTINCT blocks.
	PassDistinctSelect
	// PassOnlyExtremes: every aggregate is min/max (never approximated).
	PassOnlyExtremes
	// PassOther: anything else the rewriter cannot handle.
	PassOther
)

func (s SupportStatus) String() string {
	switch s {
	case Supported:
		return "supported"
	case PassNoAggregates:
		return "no aggregates"
	case PassExistsSubquery:
		return "exists/in-subquery"
	case PassSetOperation:
		return "set operation"
	case PassDistinctSelect:
		return "select distinct"
	case PassOnlyExtremes:
		return "extreme statistics only"
	}
	return "unsupported"
}

// extremeAggs are the statistics VerdictDB never approximates.
var extremeAggs = map[string]bool{"min": true, "max": true}

// Analyze inspects a parsed SELECT and reports whether the AQP rewriter
// supports it.
func Analyze(sel *sqlparser.SelectStmt) SupportStatus {
	if sel.Union != nil {
		return PassSetOperation
	}
	if sel.Distinct {
		return PassDistinctSelect
	}
	if !sqlparser.HasAggregates(sel) {
		return PassNoAggregates
	}
	// EXISTS / IN-subquery anywhere in WHERE or HAVING.
	disqualified := false
	checkPred := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			switch t := x.(type) {
			case *sqlparser.ExistsExpr:
				disqualified = true
			case *sqlparser.InExpr:
				if t.Subquery != nil {
					disqualified = true
				}
			}
			return true
		})
	}
	checkPred(sel.Where)
	checkPred(sel.Having)
	if disqualified {
		return PassExistsSubquery
	}
	// Subqueries in the select list are not approximated.
	for _, it := range sel.Items {
		bad := false
		sqlparser.WalkExpr(it.Expr, func(x sqlparser.Expr) bool {
			if _, ok := x.(*sqlparser.SubqueryExpr); ok {
				bad = true
			}
			return true
		})
		if bad {
			return PassOther
		}
	}
	// All aggregates extreme?
	anyMeanLike := false
	for _, it := range sel.Items {
		sqlparser.WalkExpr(it.Expr, func(x sqlparser.Expr) bool {
			if fc, ok := x.(*sqlparser.FuncCall); ok && fc.Over == nil && sqlparser.AggregateFuncs[fc.Name] {
				if !extremeAggs[fc.Name] {
					anyMeanLike = true
				}
				return false
			}
			return true
		})
	}
	if !anyMeanLike {
		if len(sel.GroupBy) > 0 && len(collectAggItems(sel)) == 0 {
			// GROUP BY without aggregate functions: just a dedup; pass.
			return PassNoAggregates
		}
		return PassOnlyExtremes
	}
	return Supported
}

// AggKind classifies an aggregate call for rewriting.
type AggKind int

// Aggregate classes the rewriter distinguishes.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggVar
	AggStddev
	AggQuantile
	AggCountDistinct
	AggExtreme // min/max — answered exactly
	AggOther
)

// classifyAgg maps a function call to its rewrite class.
func classifyAgg(fc *sqlparser.FuncCall) AggKind {
	if fc.Distinct {
		if fc.Name == "count" {
			return AggCountDistinct
		}
		return AggOther
	}
	switch fc.Name {
	case "count", "approx_count_distinct", "ndv":
		if fc.Name != "count" {
			return AggCountDistinct
		}
		return AggCount
	case "sum":
		return AggSum
	case "avg":
		return AggAvg
	case "var", "variance", "var_samp":
		return AggVar
	case "stddev", "stddev_samp":
		return AggStddev
	case "percentile", "quantile", "median", "approx_median":
		return AggQuantile
	case "min", "max":
		return AggExtreme
	}
	return AggOther
}

// aggsIn returns the distinct aggregate calls inside an expression.
func aggsIn(e sqlparser.Expr) []*sqlparser.FuncCall {
	var out []*sqlparser.FuncCall
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if fc, ok := x.(*sqlparser.FuncCall); ok && fc.Over == nil && sqlparser.AggregateFuncs[fc.Name] {
			out = append(out, fc)
			return false
		}
		return true
	})
	return out
}

// collectAggItems returns the indexes of select items containing aggregates.
func collectAggItems(sel *sqlparser.SelectStmt) []int {
	var out []int
	for i, it := range sel.Items {
		if it.Expr != nil && sqlparser.ContainsAggregate(it.Expr) {
			out = append(out, i)
		}
	}
	return out
}

// TableOccurrence is the exported alias of the planner's table-occurrence
// record, letting external harnesses build CandidatePlans directly.
type TableOccurrence = tableOccurrence

// tableOccurrence is one base-table reference in a FROM tree.
type tableOccurrence struct {
	Alias string // effective alias (lower-cased)
	Base  string // base table name (lower-cased)
	// Rows is the base table's cardinality (0 when unknown); the planner
	// charges large base-table reads against the I/O budget.
	Rows int64
	// JoinCols are this occurrence's columns used in equi-join conditions,
	// mapped to the (alias, column) on the other side.
	JoinCols map[string][]joinPeer
}

type joinPeer struct {
	Alias string
	Col   string
}

// collectOccurrences walks a FROM tree gathering base-table references and
// equi-join column pairs. Derived tables are descended into (their inner
// occurrences are planned too) but tracked separately by the rewriter.
func collectOccurrences(from sqlparser.TableExpr, out map[string]*tableOccurrence) error {
	switch t := from.(type) {
	case nil:
		return nil
	case *sqlparser.TableRef:
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = strings.ToLower(baseName(t.Name))
		}
		if _, dup := out[alias]; dup {
			return fmt.Errorf("core: duplicate table alias %q", alias)
		}
		out[alias] = &tableOccurrence{
			Alias:    alias,
			Base:     strings.ToLower(t.Name),
			JoinCols: map[string][]joinPeer{},
		}
		return nil
	case *sqlparser.DerivedTable:
		// The derived table's own occurrences are handled when the rewriter
		// recurses; at this level it contributes no sampleable occurrence.
		return nil
	case *sqlparser.JoinExpr:
		if err := collectOccurrences(t.Left, out); err != nil {
			return err
		}
		if err := collectOccurrences(t.Right, out); err != nil {
			return err
		}
		recordJoinPairs(t.On, out)
		return nil
	}
	return fmt.Errorf("core: unsupported FROM element %T", from)
}

// recordJoinPairs extracts alias1.c1 = alias2.c2 conjuncts.
func recordJoinPairs(on sqlparser.Expr, occ map[string]*tableOccurrence) {
	if on == nil {
		return
	}
	if be, ok := on.(*sqlparser.BinaryExpr); ok {
		if be.Op == "AND" {
			recordJoinPairs(be.L, occ)
			recordJoinPairs(be.R, occ)
			return
		}
		if be.Op == "=" {
			l, lok := be.L.(*sqlparser.ColumnRef)
			r, rok := be.R.(*sqlparser.ColumnRef)
			if lok && rok && l.Table != "" && r.Table != "" {
				la, ra := strings.ToLower(l.Table), strings.ToLower(r.Table)
				lc, rc := strings.ToLower(l.Name), strings.ToLower(r.Name)
				if lo, ok := occ[la]; ok {
					lo.JoinCols[lc] = append(lo.JoinCols[lc], joinPeer{Alias: ra, Col: rc})
				}
				if ro, ok := occ[ra]; ok {
					ro.JoinCols[rc] = append(ro.JoinCols[rc], joinPeer{Alias: la, Col: lc})
				}
			}
		}
	}
}

func baseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
