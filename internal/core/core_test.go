package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// testEnv is a loaded database with samples and a middleware.
type testEnv struct {
	db  drivers.DB
	m   *Middleware
	cat *meta.Catalog
}

// newEnv builds a 200k-row orders table joined to a small products table,
// with uniform/hashed/stratified samples prepared.
func newEnv(t testing.TB, opts Options) *testEnv {
	t.Helper()
	e := engine.NewSeeded(101)
	if err := e.CreateTable("orders", []engine.Column{
		{Name: "order_id", Type: engine.TInt},
		{Name: "city", Type: engine.TString},
		{Name: "product_id", Type: engine.TInt},
		{Name: "price", Type: engine.TFloat},
		{Name: "quantity", Type: engine.TInt},
	}); err != nil {
		t.Fatal(err)
	}
	const nOrders = 200_000
	cities := []string{"ann arbor", "detroit", "chicago", "columbus", "madison"}
	rows := make([][]engine.Value, 0, nOrders)
	for i := 0; i < nOrders; i++ {
		rows = append(rows, []engine.Value{
			int64(i + 1),
			cities[i%len(cities)],
			int64(i%50 + 1),
			float64(10 + (i*7919)%100),
			int64(1 + i%7),
		})
	}
	if err := e.InsertRows("orders", rows); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("products", []engine.Column{
		{Name: "product_id", Type: engine.TInt},
		{Name: "category", Type: engine.TString},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		cat := "food"
		if i > 25 {
			cat = "tools"
		}
		if err := e.InsertRows("products", [][]engine.Value{{int64(i), cat}}); err != nil {
			t.Fatal(err)
		}
	}
	db := drivers.NewGeneric(e)
	cat, err := meta.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	b := sampling.NewBuilder(db, cat)
	if _, err := b.CreateUniform("orders", 0.01); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateHashed("orders", "order_id", 0.02); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateStratified("orders", []string{"city"}, 0.01); err != nil {
		t.Fatal(err)
	}
	if opts.Confidence == 0 {
		opts = DefaultOptions()
	}
	return &testEnv{db: db, m: New(db, cat, opts), cat: cat}
}

func (env *testEnv) exact(t testing.TB, sql string) *engine.ResultSet {
	t.Helper()
	rs, err := env.db.Query(sql)
	if err != nil {
		t.Fatalf("exact %q: %v", sql, err)
	}
	return rs
}

func (env *testEnv) approx(t testing.TB, sql string) *Answer {
	t.Helper()
	a, err := env.m.Query(sql)
	if err != nil {
		t.Fatalf("approx %q: %v", sql, err)
	}
	return a
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestAnalyzeSupportMatrix(t *testing.T) {
	// Table 1: the supported-query matrix.
	cases := []struct {
		sql  string
		want SupportStatus
	}{
		{"select count(*) from orders", Supported},
		{"select city, sum(price) from orders group by city", Supported},
		{"select avg(price), stddev(price), var(price) from orders", Supported},
		{"select count(distinct product_id) from orders", Supported},
		{"select percentile(price, 0.5) from orders", Supported},
		{"select count(*) from orders o join products p on o.product_id = p.product_id", Supported},
		{"select count(*) from orders where price > (select avg(price) from orders)", Supported},
		{"select * from orders", PassNoAggregates},
		{"select distinct city from orders", PassDistinctSelect},
		{"select count(*) from orders where exists (select 1 from products)", PassExistsSubquery},
		{"select count(*) from orders where product_id in (select product_id from products)", PassExistsSubquery},
		{"select min(price), max(price) from orders", PassOnlyExtremes},
		{"select city from orders union select city from orders", PassSetOperation},
	}
	for _, c := range cases {
		sel, err := sqlparser.ParseSelect(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		if got := Analyze(sel); got != c.want {
			t.Errorf("Analyze(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestSimpleCountApprox(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select count(*) as c from orders")
	if !a.Approximate {
		t.Fatalf("not approximate: %v", a.Status)
	}
	got := a.Float(0, "c")
	if relDiff(got, 200_000) > 0.05 {
		t.Fatalf("count estimate %v (want ~200000)", got)
	}
	// An error estimate exists and covers reality loosely.
	lo, hi, ok := a.ConfidenceInterval(0, 0)
	if !ok {
		t.Fatal("no error estimate")
	}
	if lo > 200_000+15000 || hi < 200_000-15000 {
		t.Errorf("interval [%v, %v] far from truth", lo, hi)
	}
	if a.RowsScanned >= 200_000 {
		t.Errorf("approximate query scanned %d rows (no speedup)", a.RowsScanned)
	}
}

func TestGroupBySumApprox(t *testing.T) {
	env := newEnv(t, Options{})
	sql := "select city, sum(price) as rev, count(*) as c from orders group by city order by city"
	a := env.approx(t, sql)
	ex := env.exact(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	if len(a.Rows) != len(ex.Rows) {
		t.Fatalf("groups %d vs %d", len(a.Rows), len(ex.Rows))
	}
	for i := range ex.Rows {
		if a.Rows[i][0] != ex.Rows[i][0] {
			t.Fatalf("group order mismatch: %v vs %v", a.Rows[i][0], ex.Rows[i][0])
		}
		wantRev, _ := engine.ToFloat(ex.Rows[i][1])
		gotRev, _ := engine.ToFloat(a.Rows[i][1])
		if relDiff(gotRev, wantRev) > 0.08 {
			t.Errorf("group %v rev %v want %v", a.Rows[i][0], gotRev, wantRev)
		}
	}
}

func TestAvgApproxUsesRatioEstimator(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select avg(price) as ap from orders where quantity >= 3")
	ex := env.exact(t, "select avg(price) as ap from orders where quantity >= 3")
	want, _ := engine.ToFloat(ex.Rows[0][0])
	if relDiff(a.Float(0, "ap"), want) > 0.03 {
		t.Fatalf("avg %v want %v", a.Float(0, "ap"), want)
	}
}

func TestCompoundAggExpression(t *testing.T) {
	// Ratio-of-sums (the TPC-H q8/q14 shape) gets a point estimate and an
	// error via per-subsample substitution.
	env := newEnv(t, Options{})
	sql := "select 100.0 * sum(price * quantity) / sum(quantity) as weighted from orders"
	a := env.approx(t, sql)
	ex := env.exact(t, sql)
	want, _ := engine.ToFloat(ex.Rows[0][0])
	if relDiff(a.Float(0, "weighted"), want) > 0.05 {
		t.Fatalf("compound %v want %v", a.Float(0, "weighted"), want)
	}
	if _, _, ok := a.ConfidenceInterval(0, 0); !ok {
		t.Error("compound expression lacks error estimate")
	}
}

func TestCountDistinctUsesHashedSample(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select count(distinct order_id) as d from orders")
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	usedHashed := false
	for _, s := range a.SampleTables {
		if strings.Contains(s, "hashed") {
			usedHashed = true
		}
	}
	if !usedHashed {
		t.Errorf("count-distinct planned on %v (want hashed sample)", a.SampleTables)
	}
	got := a.Float(0, "d")
	if relDiff(got, 200_000) > 0.1 {
		t.Fatalf("distinct estimate %v want ~200000", got)
	}
}

func TestExtremeDecomposition(t *testing.T) {
	env := newEnv(t, Options{})
	sql := "select city, count(*) as c, max(price) as mx from orders group by city order by city"
	a := env.approx(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	ex := env.exact(t, sql)
	for i := range ex.Rows {
		wantMax, _ := engine.ToFloat(ex.Rows[i][2])
		gotMax, _ := engine.ToFloat(a.Rows[i][2])
		if gotMax != wantMax {
			t.Errorf("max must be exact: got %v want %v", gotMax, wantMax)
		}
		wantC, _ := engine.ToFloat(ex.Rows[i][1])
		gotC, _ := engine.ToFloat(a.Rows[i][1])
		if relDiff(gotC, wantC) > 0.1 {
			t.Errorf("count approx %v want %v", gotC, wantC)
		}
	}
}

func TestJoinWithDimensionTable(t *testing.T) {
	env := newEnv(t, Options{})
	sql := `select p.category, sum(o.price) as rev from orders o
		inner join products p on o.product_id = p.product_id
		group by p.category order by p.category`
	a := env.approx(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	ex := env.exact(t, sql)
	if len(a.Rows) != len(ex.Rows) {
		t.Fatalf("groups %d vs %d", len(a.Rows), len(ex.Rows))
	}
	for i := range ex.Rows {
		want, _ := engine.ToFloat(ex.Rows[i][1])
		got, _ := engine.ToFloat(a.Rows[i][1])
		if relDiff(got, want) > 0.08 {
			t.Errorf("category %v: %v want %v", ex.Rows[i][0], got, want)
		}
	}
}

func TestNestedAggregateQuery(t *testing.T) {
	env := newEnv(t, Options{})
	sql := `select avg(rev) as avg_rev from
		(select city, sum(price) as rev from orders group by city) as t`
	a := env.approx(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v (sql %v)", a.Status, a.RewrittenSQL)
	}
	ex := env.exact(t, sql)
	want, _ := engine.ToFloat(ex.Rows[0][0])
	if relDiff(a.Float(0, "avg_rev"), want) > 0.08 {
		t.Fatalf("nested avg %v want %v", a.Float(0, "avg_rev"), want)
	}
}

func TestComparisonSubqueryFlattening(t *testing.T) {
	env := newEnv(t, Options{})
	sql := `select count(*) as c from orders o
		where o.price > (select avg(i.price) from orders i where i.product_id = o.product_id)`
	a := env.approx(t, sql)
	ex := env.exact(t, sql)
	want, _ := engine.ToFloat(ex.Rows[0][0])
	got := a.Float(0, "c")
	if relDiff(got, want) > 0.15 {
		t.Fatalf("flattened subquery count %v want %v (approx=%v)", got, want, a.Approximate)
	}
}

func TestHavingAndOrderLimit(t *testing.T) {
	env := newEnv(t, Options{})
	sql := `select city, count(*) as c from orders group by city
		having count(*) > 1000 order by c desc limit 3`
	a := env.approx(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("limit not applied: %d rows", len(a.Rows))
	}
	prev := math.Inf(1)
	for i := range a.Rows {
		c, _ := engine.ToFloat(a.Rows[i][1])
		if c > prev {
			t.Errorf("not descending: %v after %v", c, prev)
		}
		prev = c
	}
}

func TestPassthroughUnsupported(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select * from products")
	if a.Approximate {
		t.Fatal("non-aggregate query approximated")
	}
	if len(a.Rows) != 50 {
		t.Fatalf("passthrough rows %d", len(a.Rows))
	}
	a2 := env.approx(t, "select min(price) as mn from orders")
	if a2.Approximate {
		t.Fatal("extreme-only query approximated")
	}
}

func TestHACFallback(t *testing.T) {
	opts := DefaultOptions()
	opts.MinAccuracy = 0.999999 // essentially impossible: force fallback
	env := newEnv(t, opts)
	a := env.approx(t, "select city, avg(price) as ap from orders group by city")
	if !a.HACFallback {
		t.Fatalf("HAC did not trigger (maxRelErr=%v)", a.MaxRelativeError())
	}
	if a.Approximate {
		t.Fatal("fallback answer still marked approximate")
	}
	// Exact answer matches ground truth.
	ex := env.exact(t, "select city, avg(price) as ap from orders group by city")
	if len(a.Rows) != len(ex.Rows) {
		t.Fatalf("rows %d vs %d", len(a.Rows), len(ex.Rows))
	}
}

func TestErrorColumnsOption(t *testing.T) {
	opts := DefaultOptions()
	opts.ErrorColumns = true
	env := newEnv(t, opts)
	a := env.approx(t, "select count(*) as c from orders")
	if a.ColIndex("c_err") < 0 {
		t.Fatalf("c_err column missing: %v", a.Cols)
	}
	if v, ok := engine.ToFloat(a.Value(0, "c_err")); !ok || v <= 0 {
		t.Fatalf("c_err value: %v", a.Value(0, "c_err"))
	}
	// Default: no error columns.
	env2 := newEnv(t, Options{})
	a2 := env2.approx(t, "select count(*) as c from orders")
	if a2.ColIndex("c_err") >= 0 {
		t.Fatal("error columns leaked into default output")
	}
}

func TestGroupCardinalityDecline(t *testing.T) {
	env := newEnv(t, Options{})
	// order_id has 200k distinct values: grouping by it must decline AQP
	// (the paper's tq-3/8/15 behaviour).
	a := env.approx(t, "select order_id, count(*) as c from orders group by order_id")
	if a.Approximate {
		t.Fatal("high-cardinality grouping was approximated")
	}
}

func TestStratifiedAdvantageForGroupedQuery(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select city, count(*) as c from orders group by city")
	usedStratified := false
	for _, s := range a.SampleTables {
		if strings.Contains(s, "stratified") {
			usedStratified = true
		}
	}
	if !usedStratified {
		t.Errorf("grouped query planned on %v (want stratified sample)", a.SampleTables)
	}
}

func TestErrorEstimateIsCalibrated(t *testing.T) {
	// Run the same count query on many fresh environments; ~95% of the
	// reported intervals should contain the truth. With a handful of trials
	// we only check a loose bound.
	misses := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		e := engine.NewSeeded(int64(500 + trial))
		if err := e.CreateTable("t", []engine.Column{
			{Name: "x", Type: engine.TFloat},
		}); err != nil {
			t.Fatal(err)
		}
		rows := make([][]engine.Value, 0, 100_000)
		for i := 0; i < 100_000; i++ {
			rows = append(rows, []engine.Value{float64(i % 100)})
		}
		if err := e.InsertRows("t", rows); err != nil {
			t.Fatal(err)
		}
		db := drivers.NewGeneric(e)
		cat, _ := meta.Open(db)
		b := sampling.NewBuilder(db, cat)
		if _, err := b.CreateUniform("t", 0.02); err != nil {
			t.Fatal(err)
		}
		m := New(db, cat, DefaultOptions())
		a, err := m.Query("select sum(x) as s from t")
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := a.ConfidenceInterval(0, 0)
		if !ok {
			t.Fatal("no interval")
		}
		const truth = 4_950_000 // 100k rows, mean 49.5
		if truth < lo || truth > hi {
			misses++
		}
	}
	if misses > 3 {
		t.Errorf("interval missed truth %d/%d times", misses, trials)
	}
}

func TestRewriteShapeMatchesAppendixG(t *testing.T) {
	// The rewritten SQL has the Appendix G structure: an inner derived
	// table grouping by (groups, verdict_sid) with HT partials, an outer
	// group by with stddev-based error expressions.
	env := newEnv(t, Options{})
	a := env.approx(t, "select city, count(*) as c from orders group by city")
	if len(a.RewrittenSQL) != 1 {
		t.Fatalf("rewritten queries: %d", len(a.RewrittenSQL))
	}
	sql := strings.ToLower(a.RewrittenSQL[0])
	for _, want := range []string{"verdict_sid", "verdict_size", "stddev", "sqrt", "vt1", "group by"} {
		if !strings.Contains(sql, want) {
			t.Errorf("rewritten SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFlattenProducesJoin(t *testing.T) {
	sel, err := sqlparser.ParseSelect(`select count(*) from orders o
		where o.price > (select avg(price) from orders i where i.product_id = o.product_id)`)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FlattenComparisonSubqueries(sel)
	if err != nil {
		t.Fatal(err)
	}
	join, ok := flat.From.(*sqlparser.JoinExpr)
	if !ok {
		t.Fatalf("FROM not a join after flattening: %T", flat.From)
	}
	dt, ok := join.Right.(*sqlparser.DerivedTable)
	if !ok {
		t.Fatalf("flattened right side: %T", join.Right)
	}
	if len(dt.Select.GroupBy) != 1 {
		t.Errorf("derived table group by: %d", len(dt.Select.GroupBy))
	}
	// The original query must be untouched.
	if _, stillSub := sel.From.(*sqlparser.TableRef); !stillSub {
		t.Error("original AST mutated")
	}
}

func TestFoldSidRange(t *testing.T) {
	// h(i,j) must land in [1, r1*r2] for all sid combinations.
	for _, b1 := range []int64{4, 9, 16, 45} {
		for _, b2 := range []int64{4, 25, 100} {
			expr, bOut := foldSid(
				&sqlparser.ColumnRef{Name: "s1"}, b1,
				&sqlparser.ColumnRef{Name: "s2"}, b2)
			e := engine.NewSeeded(1)
			if err := e.CreateTable("t", []engine.Column{
				{Name: "s1", Type: engine.TInt}, {Name: "s2", Type: engine.TInt},
			}); err != nil {
				t.Fatal(err)
			}
			var rows [][]engine.Value
			for i := int64(1); i <= b1; i++ {
				for j := int64(1); j <= b2; j++ {
					rows = append(rows, []engine.Value{i, j})
				}
			}
			if err := e.InsertRows("t", rows); err != nil {
				t.Fatal(err)
			}
			sql := fmt.Sprintf("select min(%s), max(%s) from t",
				sqlparser.FormatExpr(expr), sqlparser.FormatExpr(expr))
			rs, err := e.Query(sql)
			if err != nil {
				t.Fatalf("fold sid b1=%d b2=%d: %v", b1, b2, err)
			}
			lo, _ := engine.ToFloat(rs.Rows[0][0])
			hi, _ := engine.ToFloat(rs.Rows[0][1])
			if lo < 1 || int64(hi) > bOut {
				t.Errorf("b1=%d b2=%d: sid range [%v,%v] out of [1,%d]", b1, b2, lo, hi, bOut)
			}
		}
	}
}

func TestTraditionalSubsamplingBaseline(t *testing.T) {
	opts := DefaultOptions()
	opts.Method = MethodTraditionalSubsampling
	env := newEnv(t, opts)
	a := env.approx(t, "select city, count(*) as c, avg(price) as ap from orders group by city")
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	ex := env.exact(t, "select city, count(*) as c from orders group by city order by city")
	if len(a.Rows) != len(ex.Rows) {
		t.Fatalf("groups %d vs %d", len(a.Rows), len(ex.Rows))
	}
	for r := range a.Rows {
		c, _ := engine.ToFloat(a.Rows[r][1])
		if relDiff(c, 40_000) > 0.15 {
			t.Errorf("trad subsampling count %v want ~40000", c)
		}
		if math.IsNaN(a.StdErr[r][1]) {
			t.Error("missing error estimate")
		}
	}
}

func TestConsolidatedBootstrapBaseline(t *testing.T) {
	opts := DefaultOptions()
	opts.Method = MethodConsolidatedBootstrap
	env := newEnv(t, opts)
	a := env.approx(t, "select count(*) as c, avg(price) as ap from orders")
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	c := a.Float(0, "c")
	if relDiff(c, 200_000) > 0.1 {
		t.Fatalf("bootstrap count %v", c)
	}
	if math.IsNaN(a.StdErr[0][0]) {
		t.Error("missing bootstrap error estimate")
	}
}

func TestMethodNoneSkipsErrors(t *testing.T) {
	opts := DefaultOptions()
	opts.Method = MethodNone
	env := newEnv(t, opts)
	a := env.approx(t, "select count(*) as c from orders")
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	if _, _, ok := a.ConfidenceInterval(0, 0); ok {
		t.Fatal("MethodNone produced an error estimate")
	}
	if strings.Contains(strings.ToLower(a.RewrittenSQL[0]), "stddev") {
		t.Fatal("MethodNone rewrite still computes stddev")
	}
}

func TestQuantileApprox(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select percentile(price, 0.5) as med from orders")
	ex := env.exact(t, "select percentile(price, 0.5) as med from orders")
	want, _ := engine.ToFloat(ex.Rows[0][0])
	if relDiff(a.Float(0, "med"), want) > 0.1 {
		t.Fatalf("median %v want %v", a.Float(0, "med"), want)
	}
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
}

func TestVarStddevApprox(t *testing.T) {
	env := newEnv(t, Options{})
	a := env.approx(t, "select stddev(price) as sd, var(price) as v from orders")
	ex := env.exact(t, "select stddev(price) as sd, var(price) as v from orders")
	wantSD, _ := engine.ToFloat(ex.Rows[0][0])
	wantV, _ := engine.ToFloat(ex.Rows[0][1])
	if relDiff(a.Float(0, "sd"), wantSD) > 0.05 {
		t.Errorf("stddev %v want %v", a.Float(0, "sd"), wantSD)
	}
	if relDiff(a.Float(0, "v"), wantV) > 0.1 {
		t.Errorf("var %v want %v", a.Float(0, "v"), wantV)
	}
}

func TestDDLPassthrough(t *testing.T) {
	env := newEnv(t, Options{})
	a, err := env.m.Query("create table scratch (a int)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Approximate {
		t.Fatal("DDL approximated?!")
	}
	if _, err := env.db.Query("select count(*) from scratch"); err != nil {
		t.Fatalf("DDL not executed: %v", err)
	}
}

func TestNestedSumUsesMeanCombination(t *testing.T) {
	// The tq-9 shape: an outer SUM over a Bernoulli-nested aggregate block.
	// Per-subsample estimates must be combined by mean, not summed b times.
	env := newEnv(t, Options{})
	sql := `select city, sum(rev) as total from
		(select city, product_id, sum(price) as rev from orders
		 group by city, product_id) as t
		group by city order by city`
	a := env.approx(t, sql)
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	ex := env.exact(t, sql)
	if len(a.Rows) != len(ex.Rows) {
		t.Fatalf("groups %d vs %d", len(a.Rows), len(ex.Rows))
	}
	for i := range ex.Rows {
		want, _ := engine.ToFloat(ex.Rows[i][1])
		got, _ := engine.ToFloat(a.Rows[i][1])
		if relDiff(got, want) > 0.15 {
			t.Errorf("group %v: nested sum %v want %v (ratio %.2f)",
				ex.Rows[i][0], got, want, got/want)
		}
	}
}

func TestNestedCountReplicated(t *testing.T) {
	// Outer COUNT over a nested block: counts inner groups, combined by
	// mean across subsamples.
	env := newEnv(t, Options{})
	sql := `select count(*) as c from
		(select city, sum(price) as rev from orders group by city) as t`
	a := env.approx(t, sql)
	ex := env.exact(t, sql)
	want, _ := engine.ToFloat(ex.Rows[0][0])
	got := a.Float(0, "c")
	if !a.Approximate {
		t.Fatalf("status %v", a.Status)
	}
	if relDiff(got, want) > 0.25 {
		t.Fatalf("nested count %v want %v", got, want)
	}
}
