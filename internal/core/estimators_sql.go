package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
	"verdictdb/internal/stats"
)

// resampleSeq uniquifies the baselines' scratch-table names so concurrent
// resampling queries never clobber each other's temp tables.
var resampleSeq atomic.Int64

// This file implements the two resampling baselines of Section 6.4 as a
// middleware would have to: entirely in SQL.
//
// Traditional subsampling (Query 1): materialize an O(b*n) table assigning
// each sample tuple to each subsample with probability ns/n, then aggregate
// per subsample. Consolidated bootstrap: the same materialization but with a
// Poisson(1) multiplicity per (tuple, resample) — the standard online
// bootstrap consolidation. Both pay the O(b*n) construction the paper's
// variational subsampling avoids; benchmarks (Figure 7) measure exactly
// that gap.

// ResamplingParams tunes the baselines.
type ResamplingParams struct {
	B int // number of subsamples / resamples (default 100)
}

// runResamplingBaseline answers a query using traditional subsampling or
// consolidated bootstrap. Only plain aggregate items (count/sum/avg) are
// supported — the baselines exist for the Figure 7 comparison.
func (m *Middleware) runResamplingBaseline(ctx context.Context, sel *sqlparser.SelectStmt, cp ConsolidatedPlan, original string) (*Answer, error) {
	b := 100

	// Substitute samples into FROM.
	rw := &rewriter{plan: cp.Plan}
	newFrom, src, err := rw.substituteFrom(sel.From)
	if err != nil || src.sid == nil {
		return m.passthrough(ctx, original, PassOther)
	}

	// Decompose items: group items and plain aggregates.
	type aggSpec struct {
		itemIdx int
		kind    AggKind
		arg     sqlparser.Expr // nil for count(*)
		name    string
	}
	var groups []struct {
		expr  sqlparser.Expr
		alias string
		idx   int
	}
	var aggs []aggSpec
	for i, it := range sel.Items {
		if it.Expr == nil {
			return m.passthrough(ctx, original, PassOther)
		}
		if !sqlparser.ContainsAggregate(it.Expr) {
			alias := fmt.Sprintf("g%d", len(groups))
			groups = append(groups, struct {
				expr  sqlparser.Expr
				alias string
				idx   int
			}{it.Expr, alias, i})
			continue
		}
		fc, ok := it.Expr.(*sqlparser.FuncCall)
		if !ok {
			return m.passthrough(ctx, original, PassOther)
		}
		kind := classifyAgg(fc)
		if kind != AggCount && kind != AggSum && kind != AggAvg {
			return m.passthrough(ctx, original, PassOther)
		}
		var arg sqlparser.Expr
		if len(fc.Args) > 0 {
			arg = fc.Args[0]
		}
		name := it.Alias
		if name == "" {
			name = deriveName(it.Expr, i)
		}
		aggs = append(aggs, aggSpec{itemIdx: i, kind: kind, arg: arg, name: name})
	}
	if len(aggs) == 0 {
		return m.passthrough(ctx, original, PassOther)
	}

	start := time.Now()
	var totalScanned int64
	exec := func(canonical string) error {
		stmt, err := sqlparser.Parse(canonical)
		if err != nil {
			return fmt.Errorf("core: baseline SQL parse: %w (sql: %s)", err, canonical)
		}
		return m.db.ExecContext(ctx, drivers.Render(m.db, stmt))
	}
	query := func(canonical string) (*engine.ResultSet, error) {
		stmt, err := sqlparser.Parse(canonical)
		if err != nil {
			return nil, fmt.Errorf("core: baseline SQL parse: %w (sql: %s)", err, canonical)
		}
		rs, err := m.db.QueryContext(ctx, drivers.Render(m.db, stmt))
		if rs != nil {
			totalScanned += rs.RowsScanned
		}
		return rs, err
	}

	// 1. Materialize the filtered sample relation once: group columns,
	// aggregate arguments, inclusion probability.
	seq := strconv.FormatInt(resampleSeq.Add(1), 10)
	baseTmp := drivers.QualifyTemp("resample_base", seq)
	var items []string
	for _, g := range groups {
		items = append(items, fmt.Sprintf("%s as %s", sqlparser.FormatExpr(g.expr), g.alias))
	}
	for k, a := range aggs {
		if a.arg != nil {
			items = append(items, fmt.Sprintf("%s as x%d", sqlparser.FormatExpr(a.arg), k))
		} else {
			items = append(items, fmt.Sprintf("1.0 as x%d", k))
		}
	}
	items = append(items, fmt.Sprintf("%s as p", sqlparser.FormatExpr(probOrOne(src.prob))))
	fromSQL := sqlparser.FormatDialect(&sqlparser.SelectStmt{
		Items: []sqlparser.SelectItem{{Star: true}},
		From:  newFrom,
		Where: sqlparser.CloneExpr(sel.Where),
	}, sqlparser.DefaultDialect)
	fromSQL = strings.TrimPrefix(fromSQL, "SELECT * FROM ")
	whereSQL := ""
	if idx := strings.Index(fromSQL, " WHERE "); idx >= 0 {
		whereSQL = fromSQL[idx:]
		fromSQL = fromSQL[:idx]
	}
	if err := exec("drop table if exists " + baseTmp); err != nil {
		return nil, err
	}
	if err := exec(fmt.Sprintf("create table %s as select %s from %s%s",
		baseTmp, strings.Join(items, ", "), fromSQL, whereSQL)); err != nil {
		return nil, err
	}
	defer func() { _ = exec("drop table if exists " + baseTmp) }()

	rsN, err := query("select count(*) from " + baseTmp)
	if err != nil {
		return nil, err
	}
	n, _ := engine.ToInt(rsN.Rows[0][0])
	if n == 0 {
		return m.passthrough(ctx, original, PassOther)
	}
	ns := int64(math.Sqrt(float64(n)))
	if ns < 1 {
		ns = 1
	}

	// 2. Numbers table with b subsample ids.
	numsTmp := drivers.QualifyTemp("resample_nums", seq)
	if err := exec("drop table if exists " + numsTmp); err != nil {
		return nil, err
	}
	if err := exec(fmt.Sprintf("create table %s (sid bigint)", numsTmp)); err != nil {
		return nil, err
	}
	var vals []string
	for i := 1; i <= b; i++ {
		vals = append(vals, fmt.Sprintf("(%d)", i))
	}
	if err := exec(fmt.Sprintf("insert into %s values %s", numsTmp, strings.Join(vals, ", "))); err != nil {
		return nil, err
	}
	defer func() { _ = exec("drop table if exists " + numsTmp) }()

	// 3. The O(b*n) resample materialization.
	subsTmp := drivers.QualifyTemp("resample_subs", seq)
	if err := exec("drop table if exists " + subsTmp); err != nil {
		return nil, err
	}
	var ctas string
	if m.opts.Method == MethodTraditionalSubsampling {
		ctas = fmt.Sprintf(
			"create table %s as select t.*, nums.sid, 1.0 as w from %s as t cross join %s as nums where rand() < %.12g",
			subsTmp, baseTmp, numsTmp, float64(ns)/float64(n))
	} else {
		ctas = fmt.Sprintf(
			"create table %s as select t.*, nums.sid, rand_poisson1() as w from %s as t cross join %s as nums",
			subsTmp, baseTmp, numsTmp)
	}
	if err := exec(ctas); err != nil {
		return nil, err
	}
	defer func() { _ = exec("drop table if exists " + subsTmp) }()

	// 4. Per-subsample aggregates and full-sample point estimates.
	groupCols := make([]string, len(groups))
	for i, g := range groups {
		groupCols[i] = g.alias
	}
	var subAggs, pointAggs []string
	subAggs = append(subAggs, "sum(w / p) as ht")
	pointAggs = append(pointAggs, "sum(1.0 / p) as ht")
	for k := range aggs {
		subAggs = append(subAggs, fmt.Sprintf("sum(w * x%d / p) as s%d", k, k))
		pointAggs = append(pointAggs, fmt.Sprintf("sum(x%d / p) as s%d", k, k))
	}
	groupPrefixSQL := ""
	groupBySub := "sid"
	groupByPoint := ""
	if len(groupCols) > 0 {
		groupPrefixSQL = strings.Join(groupCols, ", ") + ", "
		groupBySub = strings.Join(groupCols, ", ") + ", sid"
		groupByPoint = " group by " + strings.Join(groupCols, ", ")
	}
	rsSub, err := query(fmt.Sprintf("select %ssid, %s from %s group by %s",
		groupPrefixSQL, strings.Join(subAggs, ", "), subsTmp, groupBySub))
	if err != nil {
		return nil, err
	}
	rsPoint, err := query(fmt.Sprintf("select %s%s from %s%s",
		groupPrefixSQL, strings.Join(pointAggs, ", "), baseTmp, groupByPoint))
	if err != nil {
		return nil, err
	}

	// 5. Combine in the answer rewriter: per-group point estimates and the
	// spread of per-subsample estimates.
	ng := len(groups)
	scale := 1.0
	if m.opts.Method == MethodTraditionalSubsampling {
		scale = float64(n) / float64(ns) // HT correction for ns/n thinning
	}
	type acc struct {
		point []float64
		ests  [][]float64 // per agg: per-subsample estimates
	}
	rowsByKey := map[string]*acc{}
	var order []string
	keyOf := func(row []engine.Value) string {
		var kb strings.Builder
		for i := 0; i < ng; i++ {
			kb.WriteString(engine.GroupKey(row[i]))
			kb.WriteByte('\x1f')
		}
		return kb.String()
	}
	groupVals := map[string][]engine.Value{}
	for _, row := range rsPoint.Rows {
		k := keyOf(row)
		a := &acc{point: make([]float64, len(aggs)), ests: make([][]float64, len(aggs))}
		ht, _ := engine.ToFloat(row[ng])
		for j := range aggs {
			s, _ := engine.ToFloat(row[ng+1+j])
			switch aggs[j].kind {
			case AggCount:
				a.point[j] = ht
			case AggSum:
				a.point[j] = s
			case AggAvg:
				if ht != 0 {
					a.point[j] = s / ht
				}
			}
		}
		rowsByKey[k] = a
		order = append(order, k)
		groupVals[k] = row[:ng]
	}
	for _, row := range rsSub.Rows {
		k := keyOf(row)
		a, ok := rowsByKey[k]
		if !ok {
			continue
		}
		ht, _ := engine.ToFloat(row[ng+1])
		for j := range aggs {
			s, _ := engine.ToFloat(row[ng+2+j])
			var est float64
			switch aggs[j].kind {
			case AggCount:
				est = ht * scale
			case AggSum:
				est = s * scale
			case AggAvg:
				if ht == 0 {
					continue
				}
				est = s / ht
			}
			a.ests[j] = append(a.ests[j], est)
		}
	}

	answer := &Answer{
		Approximate:  true,
		Status:       Supported,
		Confidence:   m.opts.Confidence,
		SampleTables: rw.sampleTables,
		RewrittenSQL: []string{ctas},
	}
	answer.Cols = make([]string, len(sel.Items))
	for i, it := range sel.Items {
		if it.Alias != "" {
			answer.Cols[i] = it.Alias
		} else {
			answer.Cols[i] = deriveName(it.Expr, i)
		}
	}
	seScale := 1.0
	if m.opts.Method == MethodTraditionalSubsampling {
		seScale = math.Sqrt(float64(ns) / float64(n))
	}
	for _, k := range order {
		a := rowsByKey[k]
		row := make([]engine.Value, len(sel.Items))
		errs := make([]float64, len(sel.Items))
		for i := range errs {
			errs[i] = math.NaN()
		}
		for gi, g := range groups {
			row[g.idx] = groupVals[k][gi]
		}
		for j, as := range aggs {
			row[as.itemIdx] = a.point[j]
			if len(a.ests[j]) > 1 {
				errs[as.itemIdx] = stats.Stddev(a.ests[j]) * seScale
			}
		}
		answer.Rows = append(answer.Rows, row)
		answer.StdErr = append(answer.StdErr, errs)
	}
	answer.ElapsedNanos = time.Since(start).Nanoseconds() + m.db.Overhead().Nanoseconds()
	answer.RowsScanned = totalScanned
	if err := m.applyOrderLimit(sel, answer); err != nil {
		return answer, nil //nolint:nilerr // ordering best-effort for baselines
	}
	return answer, nil
}
