package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// This file implements the sample planner of Appendix E: it enumerates
// candidate sample plans (one sample choice — or the base table — per table
// occurrence), scores them as sqrt(effective sampling ratio) times advantage
// factors, rejects plans whose I/O cost exceeds the budget, consolidates
// aggregates that share a plan, and prunes the enumeration to the top-k
// options per join (Appendix E.2).

// TableChoice picks how one table occurrence is read: a sample, or nil for
// the base table.
type TableChoice struct {
	Occurrence *tableOccurrence
	Sample     *meta.SampleInfo // nil = use the base table
}

// CandidatePlan maps every table occurrence (by alias) to a choice.
type CandidatePlan struct {
	Choices map[string]TableChoice
	Score   float64
	Cost    int64 // total sample rows read
}

// sampled reports whether any occurrence uses a sample.
func (p CandidatePlan) sampled() bool {
	//verdict:unordered existence check; any-order traversal yields the same answer
	for _, c := range p.Choices {
		if c.Sample != nil {
			return true
		}
	}
	return false
}

// Key renders the plan's choice set for consolidation (Appendix E.1:
// aggregates with identical sample sets are merged into one query).
func (p CandidatePlan) Key() string {
	aliases := make([]string, 0, len(p.Choices))
	for a := range p.Choices {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	var sb strings.Builder
	for _, a := range aliases {
		sb.WriteString(a)
		sb.WriteByte('=')
		if s := p.Choices[a].Sample; s != nil {
			sb.WriteString(s.SampleTable)
		} else {
			sb.WriteString("<base>")
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// PlannerConfig tunes the planner.
type PlannerConfig struct {
	// IOBudget is the fraction of total base rows a plan may read
	// (Section 2.4 default: 2%).
	IOBudget float64
	// TopK bounds the per-join candidate set (Appendix E.2 default: 10).
	TopK int
	// StratifiedAdvantage multiplies the score when a stratified sample's
	// column set covers the query's grouping attributes.
	StratifiedAdvantage float64
	// MinBudgetRows keeps tiny tables out of budget trouble: tables whose
	// base is smaller than this are always read whole at zero cost
	// (paper: tables under 10M rows are not sampled by default).
	MinBudgetRows int64
	// MinUniverseKeys rejects universe (hashed) samples holding fewer
	// distinct hash keys than this: a near-empty universe cannot support
	// joins, grouping, or count-distinct estimation (Appendix F).
	MinUniverseKeys int64
}

// DefaultPlannerConfig mirrors the paper's defaults, with the size threshold
// scaled to this repo's datasets.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		IOBudget:            0.02,
		TopK:                10,
		StratifiedAdvantage: 1.5,
		MinBudgetRows:       10_000,
		MinUniverseKeys:     20,
	}
}

// aggClass partitions a query's aggregate calls by planning constraints:
// count-distinct aggregates need a hashed sample on the distinct column,
// everything mean-like shares one plan.
type aggClass struct {
	// ItemIdx are the select-item indexes answered by this class.
	ItemIdx []int
	// DistinctCol is the column of count(distinct col) classes ("" for the
	// mean-like class).
	DistinctCol string
}

// classifyItems partitions aggregate-bearing select items into classes.
// Items with extreme (min/max) aggregates are reported separately.
func classifyItems(sel *sqlparser.SelectStmt) (meanlike aggClass, distincts []aggClass, extremeIdx []int, unsupported bool) {
	byCol := map[string]*aggClass{}
	for i, it := range sel.Items {
		if it.Expr == nil || !sqlparser.ContainsAggregate(it.Expr) {
			continue
		}
		aggs := aggsIn(it.Expr)
		hasExtreme, hasDistinct, hasMean := false, false, false
		var distinctCol string
		for _, fc := range aggs {
			switch classifyAgg(fc) {
			case AggExtreme:
				hasExtreme = true
			case AggCountDistinct:
				hasDistinct = true
				if len(fc.Args) == 1 {
					if cr, ok := fc.Args[0].(*sqlparser.ColumnRef); ok {
						distinctCol = strings.ToLower(cr.Name)
					}
				}
			case AggOther:
				unsupported = true
			default:
				hasMean = true
			}
		}
		switch {
		case hasExtreme && !hasDistinct && !hasMean:
			extremeIdx = append(extremeIdx, i)
		case hasExtreme:
			// Mixed extreme and mean-like inside one expression cannot be
			// decomposed; treat the whole item as extreme (exact).
			extremeIdx = append(extremeIdx, i)
		case hasDistinct && !hasMean:
			ac, ok := byCol[distinctCol]
			if !ok {
				ac = &aggClass{DistinctCol: distinctCol}
				byCol[distinctCol] = ac
			}
			ac.ItemIdx = append(ac.ItemIdx, i)
		case hasDistinct && hasMean:
			// e.g. sum(x) / count(distinct y): plan with the mean-like
			// class; count-distinct then runs on whatever sample is chosen
			// (scaled by the effective ratio), trading accuracy for a
			// single-plan execution.
			meanlike.ItemIdx = append(meanlike.ItemIdx, i)
		default:
			meanlike.ItemIdx = append(meanlike.ItemIdx, i)
		}
	}
	cols := make([]string, 0, len(byCol))
	for c := range byCol {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		distincts = append(distincts, *byCol[c])
	}
	return meanlike, distincts, extremeIdx, unsupported
}

// Planner chooses sample plans.
type Planner struct {
	cfg     PlannerConfig
	samples map[string][]meta.SampleInfo // base table (lower) -> samples
}

// NewPlanner builds a planner over the catalog's current samples.
func NewPlanner(cfg PlannerConfig, all []meta.SampleInfo) *Planner {
	byBase := map[string][]meta.SampleInfo{}
	for _, si := range all {
		key := strings.ToLower(si.BaseTable)
		byBase[key] = append(byBase[key], si)
	}
	return &Planner{cfg: cfg, samples: byBase}
}

// groupColumns extracts lower-cased simple column names from GROUP BY,
// including grouping columns of derived-table blocks (a universe sample on
// a nested grouping column keeps those groups complete, which the planner
// rewards).
func groupColumns(sel *sqlparser.SelectStmt) []string {
	var out []string
	for _, g := range sel.GroupBy {
		if cr, ok := g.(*sqlparser.ColumnRef); ok {
			out = append(out, strings.ToLower(cr.Name))
		}
	}
	var walk func(t sqlparser.TableExpr)
	walk = func(t sqlparser.TableExpr) {
		switch tt := t.(type) {
		case *sqlparser.DerivedTable:
			out = append(out, groupColumns(tt.Select)...)
		case *sqlparser.JoinExpr:
			walk(tt.Left)
			walk(tt.Right)
		}
	}
	if sel.From != nil {
		walk(sel.From)
	}
	return out
}

// Plan picks the best candidate plan for one aggregate class over the given
// occurrences. A nil return means no sampled plan is admissible (the caller
// falls back to base tables).
func (p *Planner) Plan(occ map[string]*tableOccurrence, class aggClass, groupCols []string) *CandidatePlan {
	aliases := make([]string, 0, len(occ))
	for a := range occ {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)

	// Per-occurrence options.
	options := make([][]TableChoice, len(aliases))
	for i, a := range aliases {
		o := occ[a]
		opts := []TableChoice{{Occurrence: o, Sample: nil}}
		for _, si := range p.samples[o.Base] {
			si := si
			opts = append(opts, TableChoice{Occurrence: o, Sample: &si})
		}
		// Early pruning (Appendix E.2): keep the k most promising options
		// per occurrence, ranked by the same scoring used for full plans.
		if len(opts) > p.cfg.TopK+1 {
			sort.Slice(opts[1:], func(x, y int) bool {
				return p.optionScore(opts[1+x], class, groupCols) > p.optionScore(opts[1+y], class, groupCols)
			})
			opts = opts[:p.cfg.TopK+1]
		}
		options[i] = opts
	}

	var best *CandidatePlan
	choice := make([]int, len(aliases))
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == len(aliases) {
			plan := CandidatePlan{Choices: map[string]TableChoice{}}
			for i, a := range aliases {
				plan.Choices[a] = options[i][choice[i]]
			}
			if !plan.sampled() {
				return
			}
			score, cost, ok := p.evaluate(&plan, class, groupCols)
			if !ok {
				return
			}
			plan.Score, plan.Cost = score, cost
			if best == nil || plan.Score > best.Score ||
				(plan.Score == best.Score && plan.Cost < best.Cost) {
				cp := plan
				best = &cp
			}
			return
		}
		for i := range options[depth] {
			choice[depth] = i
			recurse(depth + 1)
		}
	}
	recurse(0)
	return best
}

// optionScore ranks a single-table option for early pruning.
func (p *Planner) optionScore(c TableChoice, class aggClass, groupCols []string) float64 {
	if c.Sample == nil {
		return 0
	}
	s := math.Sqrt(c.Sample.EffectiveRatio())
	if c.Sample.Type == sqlparser.StratifiedSample && coversGroupCols(c.Sample, groupCols) {
		s *= p.cfg.StratifiedAdvantage
	}
	if c.Sample.Type == sqlparser.HashedSample && hashColInGroups(c.Sample, groupCols) {
		s *= p.cfg.StratifiedAdvantage
	}
	return s
}

// hashColInGroups reports whether a universe sample's hash column appears
// among the (possibly nested) grouping columns.
func hashColInGroups(si *meta.SampleInfo, groupCols []string) bool {
	if len(si.Columns) != 1 {
		return false
	}
	for _, g := range groupCols {
		if g == si.Columns[0] {
			return true
		}
	}
	return false
}

// evaluate scores a full plan and checks join-validity rules (Section 5.1):
//   - count-distinct classes require the distinct column's table to use a
//     hashed sample on that column (or the base table);
//   - joins may contain at most one independent (uniform/stratified) sample;
//     additional sampled relations must be hashed samples aligned on join
//     keys with another hashed sample or with the independent sample's table.
func (p *Planner) evaluate(plan *CandidatePlan, class aggClass, groupCols []string) (score float64, cost int64, ok bool) {
	independent := 0 // samples that collapse join cardinality if combined
	bernoulli := 0   // uniform/stratified samples (value-independent)
	ratio := 1.0
	advantage := 1.0
	// alignedRatios holds universe samples whose hash column is equated to
	// another chosen universe sample's hash column — they share keys, so
	// their joined ratio is the minimum (Appendix E.1). Unaligned universe
	// samples behave like independent Bernoulli samples in the join.
	var alignedRatios []float64
	var sampledCount int

	// isHashedOn reports whether the plan reads alias with a universe
	// sample hashed on col.
	isHashedOn := func(alias, col string) bool {
		c, ok := plan.Choices[alias]
		if !ok || c.Sample == nil || c.Sample.Type != sqlparser.HashedSample {
			return false
		}
		return len(c.Sample.Columns) == 1 && c.Sample.Columns[0] == col
	}

	// Latency-awareness: large base tables read in full give no speedup,
	// so plans that scan them are penalized (Appendix E prunes "too large"
	// options for the same reason). Track the fraction of large-table rows
	// the plan reads exactly.
	var largeRows, baseReadRows int64
	//verdict:unordered commutative sums; order cannot affect the totals
	for _, c := range plan.Choices {
		if c.Occurrence != nil && c.Occurrence.Rows >= p.cfg.MinBudgetRows {
			largeRows += c.Occurrence.Rows
			if c.Sample == nil {
				baseReadRows += c.Occurrence.Rows
			}
		}
	}

	//verdict:unordered commutative sums/products and order-independent budget rejections
	for _, c := range plan.Choices {
		if c.Sample == nil {
			continue
		}
		si := c.Sample
		sampledCount++
		cost += si.SampleRows
		// Per-table budget (Section 2.4): samples of large tables must stay
		// within the allowed percentage. 10% slack absorbs Bernoulli noise.
		// Stratified samples get a doubled allowance (the paper used a
		// larger budget for them since per-stratum minimums inflate sizes);
		// so do universe samples, whose size is cluster-sampled by key and
		// therefore much noisier than a Bernoulli draw.
		if si.BaseRows >= p.cfg.MinBudgetRows {
			allowance := 1.1 * p.cfg.IOBudget * float64(si.BaseRows)
			if si.Type == sqlparser.StratifiedSample || si.Type == sqlparser.HashedSample {
				allowance *= 2
			}
			if float64(si.SampleRows) > allowance {
				return 0, 0, false
			}
		}
		switch si.Type {
		case sqlparser.UniformSample, sqlparser.StratifiedSample:
			independent++
			bernoulli++
			ratio *= si.EffectiveRatio()
			if si.Type == sqlparser.StratifiedSample && coversGroupCols(si, groupCols) {
				advantage *= p.cfg.StratifiedAdvantage
			}
		case sqlparser.HashedSample:
			if si.UniverseKeys > 0 && si.UniverseKeys < p.cfg.MinUniverseKeys {
				return 0, 0, false // degenerate universe
			}
			col := ""
			if len(si.Columns) > 0 {
				col = si.Columns[0]
			}
			inGroups := hashColInGroups(si, groupCols)
			if inGroups {
				advantage *= p.cfg.StratifiedAdvantage
			}
			aligned := false
			for _, peer := range c.Occurrence.JoinCols[col] {
				if isHashedOn(peer.Alias, peer.Col) {
					aligned = true
					break
				}
				// Hashed sample joined to a base table on its hash key
				// keeps the join total on sampled keys: also fine.
				if pc, ok := plan.Choices[peer.Alias]; ok && pc.Sample == nil {
					aligned = true
				}
			}
			// A universe sample's inclusion depends on the hash column's
			// value, so it is only admissible when that structure is what
			// the query needs: joins on the hash key, grouping by it, or
			// count-distinct over it. Plain aggregates over a
			// value-correlated universe sample would be biased (Appendix F:
			// universe samples are "mainly useful for joining fact tables").
			usedForDistinct := class.DistinctCol != "" && col == class.DistinctCol
			if !aligned && !inGroups && !usedForDistinct {
				return 0, 0, false
			}
			if aligned {
				alignedRatios = append(alignedRatios, si.Ratio)
			} else {
				// Grouping/distinct use without join alignment: the
				// universe ratio applies directly, and for join-cardinality
				// purposes the sample behaves like an independent one.
				independent++
				ratio *= si.Ratio
			}
		}
	}

	if sampledCount == 0 {
		return 0, 0, false
	}
	if independent > 1 {
		// Joining two independent samples collapses cardinality (§5.1);
		// the planner never chooses it.
		return 0, 0, false
	}
	// Section 5.1's join rule, stated on the join graph: every equi-join
	// edge connecting two SAMPLED relations must be universe-aligned on the
	// joined columns of both sides — anything else multiplies inclusion
	// probabilities on the join key and collapses the join.
	//verdict:unordered universal quantifier: rejects the plan if ANY edge violates the rule, order-independent
	for alias, c := range plan.Choices {
		if c.Sample == nil || c.Occurrence == nil {
			continue
		}
		//verdict:unordered same universal quantifier over the occurrence's join edges
		for col, peers := range c.Occurrence.JoinCols {
			for _, peer := range peers {
				pc, ok := plan.Choices[peer.Alias]
				if !ok || pc.Sample == nil {
					continue // joining a base table is always fine
				}
				if !isHashedOn(alias, col) || !isHashedOn(peer.Alias, peer.Col) {
					return 0, 0, false
				}
			}
		}
	}
	if len(alignedRatios) > 0 {
		minRatio := alignedRatios[0]
		for _, r := range alignedRatios[1:] {
			if r < minRatio {
				minRatio = r
			}
		}
		ratio *= minRatio
	}

	// count-distinct constraint.
	if class.DistinctCol != "" {
		if bernoulli > 0 {
			// Mixing a Bernoulli sample into the join re-keys the subsample
			// ids (h(i,j) fold), which breaks the hash-subdomain
			// partitioning count-distinct relies on.
			return 0, 0, false
		}
		okDistinct := false
		//verdict:unordered existence check; any-order traversal yields the same answer
		for _, c := range plan.Choices {
			if c.Sample == nil {
				continue
			}
			if c.Sample.Type == sqlparser.HashedSample && len(c.Sample.Columns) == 1 &&
				c.Sample.Columns[0] == class.DistinctCol {
				okDistinct = true
			}
		}
		if !okDistinct {
			return 0, 0, false
		}
	}
	score = math.Sqrt(ratio) * advantage
	if largeRows > 0 && baseReadRows > 0 {
		score *= 1 - 0.5*float64(baseReadRows)/float64(largeRows)
	}
	return score, cost, true
}

func coversGroupCols(si *meta.SampleInfo, groupCols []string) bool {
	if len(groupCols) == 0 {
		return false
	}
	set := si.ColumnSet()
	for _, g := range groupCols {
		if !set[g] {
			return false
		}
	}
	return true
}

// ConsolidatedPlan is one rewritten query's worth of work: the chosen
// sample plan plus the select items it answers.
type ConsolidatedPlan struct {
	Plan    CandidatePlan
	ItemIdx []int
}

// PlanQuery plans all aggregate classes of a query and consolidates classes
// that landed on identical sample sets (Appendix E.1). extremeIdx items are
// always answered exactly by the caller. A nil result (with ok=false) means
// no class admits a sampled plan.
func (p *Planner) PlanQuery(sel *sqlparser.SelectStmt, occ map[string]*tableOccurrence) (plans []ConsolidatedPlan, extremeIdx []int, ok bool, err error) {
	meanlike, distincts, extremes, unsupported := classifyItems(sel)
	if unsupported {
		return nil, nil, false, fmt.Errorf("core: unsupported aggregate in query")
	}
	extremeIdx = extremes
	groupCols := groupColumns(sel)

	byKey := map[string]*ConsolidatedPlan{}
	var order []string
	add := func(class aggClass) bool {
		if len(class.ItemIdx) == 0 {
			return true
		}
		cand := p.Plan(occ, class, groupCols)
		if cand == nil {
			return false
		}
		key := cand.Key()
		cp, exists := byKey[key]
		if !exists {
			cp = &ConsolidatedPlan{Plan: *cand}
			byKey[key] = cp
			order = append(order, key)
		}
		cp.ItemIdx = append(cp.ItemIdx, class.ItemIdx...)
		return true
	}
	allOK := add(meanlike)
	for _, dc := range distincts {
		if !add(dc) {
			allOK = false
		}
	}
	if !allOK {
		return nil, extremeIdx, false, nil
	}
	for _, k := range order {
		sort.Ints(byKey[k].ItemIdx)
		plans = append(plans, *byKey[k])
	}
	return plans, extremeIdx, len(plans) > 0, nil
}
