package core

import (
	"math"
	"strings"

	"verdictdb/internal/engine"
	"verdictdb/internal/stats"
)

// Answer is what VerdictDB returns to the user: the (approximate) result
// plus error estimates and provenance.
type Answer struct {
	Cols []string
	Rows [][]engine.Value

	// StdErr[r][c] is the estimated standard error of Rows[r][c]; NaN for
	// non-aggregate columns and exact results.
	StdErr [][]float64

	// Approximate is true when sample tables answered the query.
	Approximate bool
	// Status explains a passthrough (Supported when Approximate).
	Status SupportStatus
	// SampleTables lists the samples used.
	SampleTables []string
	// RewrittenSQL holds the SQL actually sent to the engine.
	RewrittenSQL []string
	// HACFallback is true when an accuracy contract forced an exact re-run.
	HACFallback bool
	// Confidence is the confidence level used for intervals.
	Confidence float64
	// ElapsedNanos is the total engine time (including modeled overhead).
	ElapsedNanos int64
	// RowsScanned totals base/sample rows read by the engine.
	RowsScanned int64
	// BlocksScanned/BlocksTotal report progressive execution's block-prefix
	// position: the answer was estimated from the first BlocksScanned of the
	// sample's BlocksTotal scramble blocks. Both are 0 for single-shot
	// execution (passthrough, non-progressive plans).
	BlocksScanned int
	BlocksTotal   int
	// DeadlineDegraded marks a progressive answer returned because the
	// query's deadline expired mid-ramp: it is the last completed block
	// prefix's unbiased partial estimate, not the accuracy-target stopping
	// point, and the guard rails (accuracy contract, cardinality check) were
	// skipped. Its standard errors are still honest.
	DeadlineDegraded bool
}

// Degraded reports whether the answer was cut short by a deadline rather
// than reaching its accuracy target (see DeadlineDegraded).
func (a *Answer) Degraded() bool { return a.DeadlineDegraded }

// ColIndex returns the index of the named output column, or -1.
func (a *Answer) ColIndex(name string) int {
	for i, c := range a.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Value returns the cell at (row, named column), or nil when either is out
// of range (including a negative row, e.g. a failed lookup passed through).
func (a *Answer) Value(row int, col string) engine.Value {
	i := a.ColIndex(col)
	if i < 0 || row < 0 || row >= len(a.Rows) || i >= len(a.Rows[row]) {
		return nil
	}
	return a.Rows[row][i]
}

// Float returns the cell coerced to float64 (NaN when absent).
func (a *Answer) Float(row int, col string) float64 {
	v, ok := engine.ToFloat(a.Value(row, col))
	if !ok {
		return math.NaN()
	}
	return v
}

// ConfidenceInterval returns the (lo, hi) interval at the answer's
// confidence level for an aggregate cell; ok is false for cells without an
// error estimate.
func (a *Answer) ConfidenceInterval(row, col int) (lo, hi float64, ok bool) {
	if row < 0 || row >= len(a.StdErr) || col < 0 || col >= len(a.StdErr[row]) {
		return 0, 0, false
	}
	if row >= len(a.Rows) || col >= len(a.Rows[row]) {
		return 0, 0, false
	}
	se := a.StdErr[row][col]
	if math.IsNaN(se) {
		return 0, 0, false
	}
	v, okF := engine.ToFloat(a.Rows[row][col])
	if !okF {
		return 0, 0, false
	}
	z := stats.ZScore(a.Confidence)
	return v - z*se, v + z*se, true
}

// RelativeError returns z*se/|value| for a cell (NaN when unavailable).
func (a *Answer) RelativeError(row, col int) float64 {
	lo, hi, ok := a.ConfidenceInterval(row, col)
	if !ok {
		return math.NaN()
	}
	v, _ := engine.ToFloat(a.Rows[row][col])
	if v == 0 {
		return math.NaN()
	}
	return (hi - lo) / 2 / math.Abs(v)
}

// MaxRelativeError returns the largest relative error across all aggregate
// cells, or NaN when no cell has a defined relative error — a zero-row
// partial (or one whose aggregates are all zero or stderr-less) carries no
// accuracy information, and reporting rel-err 0 would let barely-scanned
// prefixes fake perfect accuracy past early-stopping and contract checks.
// NaN compares false against any threshold, so callers treat it as "accuracy
// unknown". It walks the StdErr matrix directly so rows the merger dropped
// (or any Rows/StdErr length mismatch) are skipped rather than recomputed
// from stale entries.
func (a *Answer) MaxRelativeError() float64 {
	worst := math.NaN()
	for r := range a.StdErr {
		if r >= len(a.Rows) {
			break
		}
		for c := range a.StdErr[r] {
			re := a.RelativeError(r, c)
			if !math.IsNaN(re) && !(re <= worst) {
				worst = re
			}
		}
	}
	return worst
}

// exactAnswer wraps an exact result set. Rows are deep-copied: the Answer
// may outlive the ResultSet (plan-cache hits, benchmark harnesses), and a
// caller mutating the ResultSet must not corrupt it.
func exactAnswer(rs *engine.ResultSet, status SupportStatus, confidence float64) *Answer {
	a := &Answer{
		Cols:        append([]string(nil), rs.Cols...),
		Rows:        copyRows(rs.Rows),
		Status:      status,
		Confidence:  confidence,
		RowsScanned: rs.RowsScanned,
	}
	a.StdErr = nanMatrix(len(rs.Rows), len(rs.Cols))
	return a
}

// copyRows deep-copies a row matrix (one level: cell values are immutable).
func copyRows(rows [][]engine.Value) [][]engine.Value {
	out := make([][]engine.Value, len(rows))
	for i, r := range rows {
		out[i] = append([]engine.Value(nil), r...)
	}
	return out
}

func nanMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		row := make([]float64, cols)
		for j := range row {
			row[j] = math.NaN()
		}
		m[i] = row
	}
	return m
}

// mergedRow accumulates one output row across consolidated plans and the
// exact extreme query.
type mergedRow struct {
	vals []engine.Value
	errs []float64
	seen []bool
}

// merger assembles final answers from per-plan partial results keyed by the
// group columns.
type merger struct {
	nItems int
	rows   map[string]*mergedRow
	order  []string
}

func newMerger(nItems int) *merger {
	return &merger{nItems: nItems, rows: map[string]*mergedRow{}}
}

func (m *merger) row(key string) *mergedRow {
	r, ok := m.rows[key]
	if !ok {
		r = &mergedRow{
			vals: make([]engine.Value, m.nItems),
			errs: make([]float64, m.nItems),
			seen: make([]bool, m.nItems),
		}
		for i := range r.errs {
			r.errs[i] = math.NaN()
		}
		m.rows[key] = r
		m.order = append(m.order, key)
	}
	return r
}

// add merges one partial result set. cols describes each output column's
// role; group columns form the merge key.
func (m *merger) add(rs *engine.ResultSet, cols []OutputCol) {
	// Locate group columns (merge key parts) and error columns by item.
	errByItem := map[int]int{}
	for ci, oc := range cols {
		if oc.Kind == ColErr {
			errByItem[oc.ItemIdx] = ci
		}
	}
	for _, row := range rs.Rows {
		var kb strings.Builder
		for ci, oc := range cols {
			if oc.Kind == ColGroup {
				kb.WriteString(engine.GroupKey(row[ci]))
				kb.WriteByte('\x1f')
			}
		}
		mr := m.row(kb.String())
		for ci, oc := range cols {
			switch oc.Kind {
			case ColGroup, ColAgg:
				mr.vals[oc.ItemIdx] = row[ci]
				mr.seen[oc.ItemIdx] = true
				if oc.Kind == ColAgg {
					if ei, ok := errByItem[oc.ItemIdx]; ok {
						if se, okF := engine.ToFloat(row[ei]); okF {
							mr.errs[oc.ItemIdx] = se
						}
					}
				}
			}
		}
	}
}

// result materializes the merged rows in first-seen order, keeping only
// rows seen by every contributing plan for all items (group mismatches can
// occur when one plan's sample missed a rare group entirely). Rows with
// incomplete seen flags are dropped — emitting them would surface nil
// aggregate cells for the items the missing plan was responsible for.
func (m *merger) result() ([][]engine.Value, [][]float64) {
	rows := make([][]engine.Value, 0, len(m.order))
	errs := make([][]float64, 0, len(m.order))
	for _, k := range m.order {
		mr := m.rows[k]
		complete := true
		for _, s := range mr.seen {
			if !s {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		rows = append(rows, mr.vals)
		errs = append(errs, mr.errs)
	}
	return rows, errs
}
