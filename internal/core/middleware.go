package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// ErrorMethod selects the error-estimation strategy (Section 6.4 compares
// them; variational subsampling is the paper's contribution and default).
type ErrorMethod int

// Error-estimation methods.
const (
	MethodVariational ErrorMethod = iota
	// MethodNone computes approximate answers without error estimates
	// (the "no error estimation" baseline of Figure 7).
	MethodNone
	// MethodTraditionalSubsampling materializes an O(b*n) subsample table
	// and aggregates it per subsample (Query 1 of Section 4.1).
	MethodTraditionalSubsampling
	// MethodConsolidatedBootstrap materializes b Poisson-weighted resamples
	// (the state-of-the-art bootstrap baseline of Section 6.4).
	MethodConsolidatedBootstrap
)

// Options configures the middleware (Section 2.4's knobs).
type Options struct {
	// IOBudget is the fraction of base data a query may read (default 2%).
	IOBudget float64
	// Confidence for error reporting (default 0.95).
	Confidence float64
	// MinAccuracy is the optional High-level Accuracy Contract: when > 0,
	// answers whose worst relative error exceeds 1-MinAccuracy are re-run
	// exactly (Section 2.4).
	MinAccuracy float64
	// ErrorColumns appends <col>_err columns to user-visible output.
	ErrorColumns bool
	// Method selects the error-estimation strategy.
	Method ErrorMethod
	// Planner tuning.
	Planner PlannerConfig
	// MaxGroupsPerSample declines AQP when the estimated group cardinality
	// exceeds this fraction of the sample size (the paper's "AQP not
	// feasible due to high-cardinality grouping attributes").
	MaxGroupsFraction float64
	// DisablePlanCache turns off the plan/rewrite cache (every query runs
	// the full parse→plan→rewrite pipeline; used by ablations).
	DisablePlanCache bool
	// MemoryBudgetBytes bounds each query's estimated engine-side memory
	// (group hash tables, join build sides, materialized rows). Overruns
	// abort the query with engine.ErrMemoryBudget instead of OOMing the
	// process. 0 means unbounded; a per-query engine.WithMemoryBudget on the
	// query's context overrides it.
	MemoryBudgetBytes int64
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions() Options {
	return Options{
		IOBudget:          0.02,
		Confidence:        0.95,
		Planner:           DefaultPlannerConfig(),
		MaxGroupsFraction: 0.08,
	}
}

// Middleware is the VerdictDB core: it intercepts queries, rewrites the
// supported ones against sample tables, and rewrites answers back. It is
// safe for concurrent use: opts/db/cat are immutable after New, and the two
// caches (plan/rewrite entries and base-table row counts) are internally
// synchronized and invalidated by catalog version bumps.
type Middleware struct {
	db   drivers.DB
	cat  *meta.Catalog
	opts Options

	plans *planCache // nil when DisablePlanCache
	stats rowStats
}

// rowStats caches base-table row counts (the planner's budget inputs) so
// repeated queries skip the per-occurrence RowCount probes. The cache is
// tied to a catalog version and additionally flushed by InvalidateStats
// when DML flows through the middleware; gen counts those flushes so an
// in-flight probe that started before a flush cannot re-cache its pre-DML
// reading afterwards.
type rowStats struct {
	mu      sync.Mutex
	version int64            //verdict:guardedby mu
	gen     int64            //verdict:guardedby mu
	rows    map[string]int64 //verdict:guardedby mu
}

// New builds a middleware over an underlying database and sample catalog.
func New(db drivers.DB, cat *meta.Catalog, opts Options) *Middleware {
	if opts.Confidence == 0 {
		opts.Confidence = 0.95
	}
	if opts.IOBudget == 0 {
		opts.IOBudget = 0.02
	}
	if opts.Planner.TopK == 0 {
		opts.Planner = DefaultPlannerConfig()
	}
	if opts.MaxGroupsFraction == 0 {
		opts.MaxGroupsFraction = 0.08
	}
	opts.Planner.IOBudget = opts.IOBudget
	m := &Middleware{db: db, cat: cat, opts: opts}
	if !opts.DisablePlanCache {
		m.plans = newPlanCache(defaultPlanCacheCap)
	}
	m.stats.rows = map[string]int64{} //verdict:unguarded construction: m is not shared until New returns
	return m
}

// Options returns the middleware's effective options.
func (m *Middleware) Options() Options { return m.opts }

// DB returns the underlying database handle.
func (m *Middleware) DB() drivers.DB { return m.db }

// CacheStats reports cumulative plan-cache hits and misses (both zero when
// the cache is disabled).
func (m *Middleware) CacheStats() (hits, misses int64) {
	if m.plans == nil {
		return 0, 0
	}
	return m.plans.stats()
}

// InvalidateStats drops the cached base-table row counts and every cached
// plan. Call it after changing base data behind the middleware's back
// (loads or DML not issued through Query). DML routed through Query and
// sample DDL routed through the catalog invalidate automatically.
func (m *Middleware) InvalidateStats() {
	m.stats.mu.Lock()
	m.stats.rows = map[string]int64{}
	m.stats.gen++
	m.stats.mu.Unlock()
	if m.plans != nil {
		m.plans.flush()
	}
}

// rowCount returns a base table's cardinality from the stats cache,
// refreshing it when the catalog version moved.
func (m *Middleware) rowCount(table string, version int64) (int64, bool) {
	m.stats.mu.Lock()
	if m.stats.version != version {
		m.stats.rows = map[string]int64{}
		m.stats.version = version
	}
	if n, ok := m.stats.rows[table]; ok {
		m.stats.mu.Unlock()
		return n, true
	}
	gen := m.stats.gen
	m.stats.mu.Unlock()
	n, err := m.db.RowCount(table)
	if err != nil {
		return 0, false
	}
	m.stats.mu.Lock()
	// Only cache if neither the catalog version nor the invalidation
	// generation moved while we probed — a concurrent DML's flush must not
	// be undone by this in-flight reading.
	if m.stats.version == version && m.stats.gen == gen {
		m.stats.rows[table] = n
	}
	m.stats.mu.Unlock()
	return n, true
}

// Query runs one SQL statement through the AQP pipeline.
func (m *Middleware) Query(sql string) (*Answer, error) {
	return m.QueryContext(context.Background(), sql)
}

// QueryContext runs one SQL statement through the AQP pipeline under ctx:
// the query observes cancellation and deadlines at every engine poll point,
// and any memory budget (Options.MemoryBudgetBytes or WithMemoryBudget on
// ctx) bounds its engine-side allocations.
func (m *Middleware) QueryContext(ctx context.Context, sql string) (a *Answer, err error) {
	ctx = m.budgetCtx(ctx)
	defer containPanic(&err, sql)
	if a, handled, err := m.queryCached(ctx, sql); handled {
		return a, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		// DDL/DML pass straight through; base data may have changed, so
		// cached plans and row counts are stale.
		if err := m.db.ExecContext(ctx, sql); err != nil {
			return nil, err
		}
		m.InvalidateStats()
		return &Answer{Status: PassNoAggregates, Confidence: m.opts.Confidence}, nil
	}
	return m.querySelect(ctx, sel, sql)
}

// QueryCached answers sql from the plan/rewrite cache, skipping parse,
// analysis, planning, and rewriting entirely. handled is false on a cache
// miss (the caller should run the full pipeline, which repopulates the
// cache). Only statements previously built by QuerySelect can hit.
func (m *Middleware) QueryCached(sql string) (a *Answer, handled bool, err error) {
	return m.QueryCachedContext(context.Background(), sql)
}

// QueryCachedContext is QueryCached honoring the caller's context.
func (m *Middleware) QueryCachedContext(ctx context.Context, sql string) (a *Answer, handled bool, err error) {
	ctx = m.budgetCtx(ctx)
	defer containPanic(&err, sql)
	return m.queryCached(ctx, sql)
}

func (m *Middleware) queryCached(ctx context.Context, sql string) (a *Answer, handled bool, err error) {
	if m.plans == nil {
		return nil, false, nil
	}
	e := m.plans.lookup(normalizeSQL(sql), m.cat.Version())
	if e == nil {
		return nil, false, nil
	}
	a, err = m.executeEntry(ctx, e, sql)
	return a, true, err
}

// QuerySelect runs a parsed SELECT through the AQP pipeline. original is
// the user's SQL for passthrough execution (it must be the SQL sel was
// parsed from — the plan cache maps original to sel's plan).
func (m *Middleware) QuerySelect(sel *sqlparser.SelectStmt, original string) (*Answer, error) {
	return m.QuerySelectContext(context.Background(), sel, original)
}

// QuerySelectContext is QuerySelect honoring the caller's context.
func (m *Middleware) QuerySelectContext(ctx context.Context, sel *sqlparser.SelectStmt, original string) (a *Answer, err error) {
	ctx = m.budgetCtx(ctx)
	defer containPanic(&err, original)
	return m.querySelect(ctx, sel, original)
}

func (m *Middleware) querySelect(ctx context.Context, sel *sqlparser.SelectStmt, original string) (*Answer, error) {
	var gen int64
	if m.plans != nil {
		m.plans.countMiss() // a SELECT running the full pipeline
		gen = m.plans.generation()
	}
	entry, direct, err := m.buildEntry(ctx, sel, original)
	if err != nil {
		return nil, err
	}
	if direct != nil {
		return direct, nil // resampling baselines bypass the cache
	}
	if m.plans != nil {
		m.plans.put(normalizeSQL(original), entry, gen)
	}
	return m.executeEntry(ctx, entry, original)
}

// buildEntry runs the deterministic half of the pipeline — analyze,
// flatten, plan, rewrite, render — and packages the result as a cacheable
// planEntry. Resampling-baseline methods execute immediately and return a
// direct answer instead (their temp-table materialization isn't cacheable).
func (m *Middleware) buildEntry(ctx context.Context, sel *sqlparser.SelectStmt, original string) (*planEntry, *Answer, error) {
	snapshot, version := m.cat.Snapshot()
	pass := func(status SupportStatus) *planEntry {
		return &planEntry{version: version, passthrough: true, status: status}
	}

	status := Analyze(sel)
	if status != Supported {
		return pass(status), nil, nil
	}
	flat, err := FlattenComparisonSubqueries(sel)
	if err != nil || flat == nil {
		return pass(PassOther), nil, nil
	}

	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(flat, occ); err != nil {
		return pass(PassOther), nil, nil
	}
	//verdict:unordered per-entry mutation keyed by the entry itself; no cross-entry effects
	for _, o := range occ {
		if n, ok := m.rowCount(o.Base, version); ok {
			o.Rows = n
		}
	}

	planner := NewPlanner(m.opts.Planner, snapshot)
	plans, extremeIdx, ok, err := planner.PlanQuery(flat, occ)
	if err != nil || !ok {
		return pass(PassOther), nil, nil
	}

	// High-cardinality grouping check (Section 6.2: tq-3/8/15 declined).
	if decline, err := m.groupCardinalityTooHigh(ctx, flat, plans[0].Plan); err == nil && decline {
		return pass(PassOther), nil, nil
	}

	multi := len(plans) > 1 || len(extremeIdx) > 0
	if multi && flat.Having != nil {
		// HAVING across merged partial plans is not reassembled; fall back.
		return pass(PassOther), nil, nil
	}

	switch m.opts.Method {
	case MethodTraditionalSubsampling, MethodConsolidatedBootstrap:
		if multi {
			a, err := m.passthrough(ctx, original, PassOther)
			return nil, a, err
		}
		a, err := m.runResamplingBaseline(ctx, flat, plans[0], original)
		return nil, a, err
	}

	entry := &planEntry{version: version, flat: flat, multi: multi}
	for _, cp := range plans {
		ro, err := Rewrite(flat, cp.Plan, cp.ItemIdx, !multi)
		if err != nil {
			return pass(PassOther), nil, nil
		}
		if m.opts.Method == MethodNone {
			stripErrorColumns(ro)
		}
		entry.steps = append(entry.steps, planStep{
			sql:          drivers.Render(m.db, ro.Stmt),
			columns:      ro.Columns,
			sampleTables: ro.SampleTables,
		})
		// The post-execution guard compares group counts against the
		// smallest sampled plan — the binding constraint on how thin the
		// sample spreads.
		if cp.Plan.Cost > 0 && (entry.planSampleRows == 0 || cp.Plan.Cost < entry.planSampleRows) {
			entry.planSampleRows = cp.Plan.Cost
		}
	}

	// Extreme statistics answered exactly (Section 2.2 decomposition).
	if len(extremeIdx) > 0 {
		sqlText, cols := m.buildExtremeQuery(flat, extremeIdx)
		entry.extreme = &planStep{sql: sqlText, columns: cols}
	}

	entry.prog = m.progressiveInfoFor(flat, plans, extremeIdx)

	names := make([]string, len(flat.Items))
	for i, it := range flat.Items {
		if it.Alias != "" {
			names[i] = it.Alias
		} else {
			names[i] = deriveName(it.Expr, i)
		}
	}
	entry.names = names
	entry.guardGroups = len(flat.GroupBy) > 0 && flat.Limit == nil
	return entry, nil, nil
}

// executeEntry runs a (possibly cached) plan entry: execute the rendered
// partial queries, merge the partial answers, and apply the guard rails.
// The entry is shared across concurrent queries and never mutated here —
// anything an Answer could mutate later (column names) is cloned.
func (m *Middleware) executeEntry(ctx context.Context, e *planEntry, original string) (*Answer, error) {
	if e.passthrough {
		return m.passthrough(ctx, original, e.status)
	}

	answer := &Answer{
		Approximate: true,
		Status:      Supported,
		Confidence:  m.opts.Confidence,
	}
	mg := newMerger(len(e.names))
	for _, st := range e.steps {
		rs, elapsed, err := m.db.QueryTimedContext(ctx, st.sql)
		if err != nil {
			// An aborted query (cancel, deadline, memory budget, contained
			// panic) propagates: re-running it as a full exact scan would
			// invert the user's intent.
			if queryAborted(err) {
				return nil, err
			}
			// A stale catalog (sample table dropped outside VerdictDB) or a
			// dialect corner case must never break the user's query: fall
			// back to exact execution, like the paper's middleware.
			return m.passthrough(ctx, original, PassOther)
		}
		answer.RewrittenSQL = append(answer.RewrittenSQL, st.sql)
		answer.SampleTables = append(answer.SampleTables, st.sampleTables...)
		answer.ElapsedNanos += elapsed.Nanoseconds()
		answer.RowsScanned += rs.RowsScanned
		mg.add(rs, st.columns)
	}
	if e.extreme != nil {
		rs, elapsed, err := m.db.QueryTimedContext(ctx, e.extreme.sql)
		if err != nil {
			if queryAborted(err) {
				return nil, err
			}
			return m.passthrough(ctx, original, PassOther)
		}
		answer.ElapsedNanos += elapsed.Nanoseconds()
		answer.RowsScanned += rs.RowsScanned
		mg.add(rs, e.extreme.columns)
	}

	// Materialize merged rows in original item order. Cols is a private
	// copy: appendErrorColumns extends it per answer.
	answer.Cols = append([]string(nil), e.names...)
	answer.Rows, answer.StdErr = mg.result()

	return m.finishEntryAnswer(ctx, e, answer, original)
}

// finishEntryAnswer applies the post-merge tail shared by single-shot and
// progressive execution: middleware-side ORDER BY/LIMIT for merged plans,
// the post-execution high-cardinality guard, the accuracy contract, and
// user-visible error columns.
func (m *Middleware) finishEntryAnswer(ctx context.Context, e *planEntry, answer *Answer, original string) (*Answer, error) {
	if e.multi {
		if err := m.applyOrderLimit(e.flat, answer); err != nil {
			return m.passthrough(ctx, original, PassOther)
		}
	}

	// Post-execution high-cardinality guard: grouping expressions the
	// pre-probe skipped (derived columns, expressions) can still explode
	// the group count; if the result spreads the sample across too many
	// groups, the estimates are meaningless — run exactly instead. The
	// group count is compared against the chosen plan's sample rows, NOT
	// cumulative scan counts: summing RowsScanned double-counts multi-plan
	// partials and includes the extreme query's full base-table scan, which
	// made the guard nearly impossible to trip for those queries. Only
	// applicable when no LIMIT truncated the output.
	if e.guardGroups &&
		float64(len(answer.Rows)) > m.opts.MaxGroupsFraction*float64(maxI64(e.planSampleRows, 1)) {
		return m.passthrough(ctx, original, PassOther)
	}

	// High-level Accuracy Contract (Section 2.4).
	if m.opts.MinAccuracy > 0 {
		if answer.MaxRelativeError() > (1 - m.opts.MinAccuracy) {
			exact, err := m.passthrough(ctx, original, Supported)
			if err != nil {
				return nil, err
			}
			exact.HACFallback = true
			return exact, nil
		}
	}

	if m.opts.ErrorColumns {
		appendErrorColumns(answer)
	}
	return answer, nil
}

// passthrough executes the original SQL unchanged.
func (m *Middleware) passthrough(ctx context.Context, sql string, status SupportStatus) (*Answer, error) {
	rs, elapsed, err := m.db.QueryTimedContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	a := exactAnswer(rs, status, m.opts.Confidence)
	a.ElapsedNanos = elapsed.Nanoseconds()
	return a, nil
}

// OccurrencesOf collects a query's table occurrences for callers that drive
// the planner or rewriter directly (benchmark harnesses, ablations).
func OccurrencesOf(sel *sqlparser.SelectStmt) (map[string]*TableOccurrence, error) {
	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(sel, occ); err != nil {
		return nil, err
	}
	return occ, nil
}

// collectAllOccurrences gathers occurrences from the top-level FROM and all
// derived-table FROMs. Conflicting aliases across scopes disable sampling
// for that alias (both scopes read base tables).
func collectAllOccurrences(sel *sqlparser.SelectStmt, out map[string]*tableOccurrence) error {
	if err := collectOccurrences(sel.From, out); err != nil {
		return err
	}
	var walkDerived func(t sqlparser.TableExpr) error
	walkDerived = func(t sqlparser.TableExpr) error {
		switch tt := t.(type) {
		case *sqlparser.DerivedTable:
			sub := map[string]*tableOccurrence{}
			if err := collectOccurrences(tt.Select.From, sub); err != nil {
				return err
			}
			//verdict:unordered alias-keyed fold; each alias's outcome depends only on its own presence
			for a, o := range sub {
				if _, dup := out[a]; dup {
					delete(out, a) // ambiguous alias: fall back to base
					continue
				}
				out[a] = o
			}
			return nil
		case *sqlparser.JoinExpr:
			if err := walkDerived(tt.Left); err != nil {
				return err
			}
			return walkDerived(tt.Right)
		}
		return nil
	}
	return walkDerived(sel.From)
}

// groupCardinalityTooHigh estimates the query's group cardinality and
// declines AQP when the chosen samples would spread too thin across groups
// (the paper's "AQP not feasible for high-cardinality grouping attributes",
// Section 6.2). Each simple grouping column is probed with ndv() against
// the table chosen for the column's occurrence — the sample table when one
// was picked, otherwise the base table (dimension tables are cheap to
// scan). A qualified column (t.col) probes exactly its occurrence's table;
// an unqualified one probes the occurrences in deterministic alias order
// until one knows the column, which is the column's binding table under
// SQL's unambiguous-reference rule. The largest per-column cardinality
// lower-bounds the group count. Non-column grouping expressions are skipped
// — the probe is deliberately best-effort and conservative.
func (m *Middleware) groupCardinalityTooHigh(ctx context.Context, sel *sqlparser.SelectStmt, plan CandidatePlan) (bool, error) {
	if len(sel.GroupBy) == 0 {
		return false, nil
	}
	var sampleRows int64
	probeByAlias := map[string]string{} // alias -> table to probe
	aliases := make([]string, 0, len(plan.Choices))
	//verdict:unordered commutative sum plus keyed map writes; aliases are sorted right below
	for a, c := range plan.Choices {
		switch {
		case c.Sample != nil:
			sampleRows += c.Sample.SampleRows
			probeByAlias[a] = c.Sample.SampleTable
		case c.Occurrence != nil:
			probeByAlias[a] = c.Occurrence.Base
		default:
			continue
		}
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	if sampleRows == 0 {
		return false, nil
	}
	ndvOf := func(col, tbl string) (int64, bool) {
		rs, err := m.db.QueryContext(ctx, fmt.Sprintf("select ndv(%s) from %s", col, tbl))
		if err != nil {
			return 0, false // column not in this table
		}
		v, ok := engine.ToInt(rs.Rows[0][0])
		return v, ok
	}
	maxNdv := int64(0)
	for _, g := range sel.GroupBy {
		cr, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			continue
		}
		if cr.Table != "" {
			// Qualified column: only its own occurrence's table may answer —
			// a same-named column on another occurrence has unrelated
			// cardinality.
			if tbl, found := probeByAlias[strings.ToLower(cr.Table)]; found {
				if v, okV := ndvOf(cr.Name, tbl); okV && v > maxNdv {
					maxNdv = v
				}
			}
			continue
		}
		for _, a := range aliases {
			if v, okV := ndvOf(cr.Name, probeByAlias[a]); okV {
				if v > maxNdv {
					maxNdv = v
				}
				break
			}
		}
	}
	return float64(maxNdv) > m.opts.MaxGroupsFraction*float64(sampleRows), nil
}

// buildExtremeQuery renders the exact query answering min/max items from
// base tables.
func (m *Middleware) buildExtremeQuery(sel *sqlparser.SelectStmt, extremeIdx []int) (string, []OutputCol) {
	ex := &sqlparser.SelectStmt{
		From:  sqlparser.CloneTable(sel.From),
		Where: sqlparser.CloneExpr(sel.Where),
	}
	for _, g := range sel.GroupBy {
		ex.GroupBy = append(ex.GroupBy, sqlparser.CloneExpr(g))
	}
	var cols []OutputCol
	want := map[int]bool{}
	for _, i := range extremeIdx {
		want[i] = true
	}
	for i, it := range sel.Items {
		isAgg := it.Expr != nil && sqlparser.ContainsAggregate(it.Expr)
		name := it.Alias
		if name == "" {
			name = deriveName(it.Expr, i)
		}
		switch {
		case !isAgg:
			ex.Items = append(ex.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: name})
			cols = append(cols, OutputCol{Kind: ColGroup, ItemIdx: i, Name: name})
		case want[i]:
			ex.Items = append(ex.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: name})
			cols = append(cols, OutputCol{Kind: ColAgg, ItemIdx: i, Name: name})
		}
	}
	return drivers.Render(m.db, ex), cols
}

// applyOrderLimit sorts and truncates merged multi-plan answers in the
// middleware (ORDER BY and LIMIT were stripped from the partial queries).
func (m *Middleware) applyOrderLimit(sel *sqlparser.SelectStmt, a *Answer) error {
	if len(sel.OrderBy) > 0 {
		type keyed struct {
			row  []engine.Value
			errs []float64
			key  []engine.Value
		}
		items := make([]keyed, len(a.Rows))
		for r := range a.Rows {
			k := keyed{row: a.Rows[r], errs: a.StdErr[r]}
			for _, ob := range sel.OrderBy {
				ci, err := m.orderColumn(sel, ob.Expr, a)
				if err != nil {
					return err
				}
				k.key = append(k.key, a.Rows[r][ci])
			}
			items[r] = k
		}
		sort.SliceStable(items, func(x, y int) bool {
			for j, ob := range sel.OrderBy {
				va, vb := items[x].key[j], items[y].key[j]
				var c int
				switch {
				case va == nil && vb == nil:
					c = 0
				case va == nil:
					c = -1
				case vb == nil:
					c = 1
				default:
					c = engine.Compare(va, vb)
				}
				if ob.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for r := range items {
			a.Rows[r] = items[r].row
			a.StdErr[r] = items[r].errs
		}
	}
	if sel.Limit != nil {
		if lit, ok := sel.Limit.(*sqlparser.Literal); ok {
			if n, ok2 := lit.Val.(int64); ok2 && int64(len(a.Rows)) > n {
				a.Rows = a.Rows[:n]
				a.StdErr = a.StdErr[:n]
			}
		}
	}
	return nil
}

// orderColumn resolves an ORDER BY term to a merged output column index.
func (m *Middleware) orderColumn(sel *sqlparser.SelectStmt, e sqlparser.Expr, a *Answer) (int, error) {
	if lit, ok := e.(*sqlparser.Literal); ok {
		if p, isInt := lit.Val.(int64); isInt && p >= 1 && int(p) <= len(a.Cols) {
			return int(p - 1), nil
		}
	}
	if cr, ok := e.(*sqlparser.ColumnRef); ok && cr.Table == "" {
		if ci := a.ColIndex(cr.Name); ci >= 0 {
			return ci, nil
		}
	}
	f := sqlparser.FormatExpr(e)
	for i, it := range sel.Items {
		if it.Expr != nil && sqlparser.FormatExpr(it.Expr) == f {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: cannot resolve ORDER BY term %s after plan merge", f)
}

// stripErrorColumns removes _err outputs for the no-error-estimation
// baseline.
func stripErrorColumns(ro *RewriteOutput) {
	kept := ro.Stmt.Items[:0]
	var keptCols []OutputCol
	for i, oc := range ro.Columns {
		if oc.Kind == ColErr {
			continue
		}
		kept = append(kept, ro.Stmt.Items[i])
		keptCols = append(keptCols, oc)
	}
	ro.Stmt.Items = kept
	ro.Columns = keptCols
}

// appendErrorColumns exposes half-width confidence intervals as extra
// user-visible columns named <col>_err. When the query already has a column
// by that name (a user alias like revenue_err), the generated name is
// de-duplicated with a numeric suffix so the appended column never shadows
// — or is shadowed by — user output.
func appendErrorColumns(a *Answer) {
	var aggCols []int
	used := make(map[string]bool, len(a.Cols))
	for c := range a.Cols {
		used[strings.ToLower(a.Cols[c])] = true
		for r := range a.Rows {
			if !math.IsNaN(a.StdErr[r][c]) {
				aggCols = append(aggCols, c)
				break
			}
		}
	}
	for _, c := range aggCols {
		name := a.Cols[c] + "_err"
		for n := 2; used[strings.ToLower(name)]; n++ {
			name = fmt.Sprintf("%s_err%d", a.Cols[c], n)
		}
		used[strings.ToLower(name)] = true
		a.Cols = append(a.Cols, name)
		for r := range a.Rows {
			lo, hi, ok := a.ConfidenceInterval(r, c)
			if ok {
				a.Rows[r] = append(a.Rows[r], (hi-lo)/2)
			} else {
				a.Rows[r] = append(a.Rows[r], nil)
			}
			a.StdErr[r] = append(a.StdErr[r], math.NaN())
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
