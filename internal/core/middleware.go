package core

import (
	"fmt"
	"math"
	"sort"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// ErrorMethod selects the error-estimation strategy (Section 6.4 compares
// them; variational subsampling is the paper's contribution and default).
type ErrorMethod int

// Error-estimation methods.
const (
	MethodVariational ErrorMethod = iota
	// MethodNone computes approximate answers without error estimates
	// (the "no error estimation" baseline of Figure 7).
	MethodNone
	// MethodTraditionalSubsampling materializes an O(b*n) subsample table
	// and aggregates it per subsample (Query 1 of Section 4.1).
	MethodTraditionalSubsampling
	// MethodConsolidatedBootstrap materializes b Poisson-weighted resamples
	// (the state-of-the-art bootstrap baseline of Section 6.4).
	MethodConsolidatedBootstrap
)

// Options configures the middleware (Section 2.4's knobs).
type Options struct {
	// IOBudget is the fraction of base data a query may read (default 2%).
	IOBudget float64
	// Confidence for error reporting (default 0.95).
	Confidence float64
	// MinAccuracy is the optional High-level Accuracy Contract: when > 0,
	// answers whose worst relative error exceeds 1-MinAccuracy are re-run
	// exactly (Section 2.4).
	MinAccuracy float64
	// ErrorColumns appends <col>_err columns to user-visible output.
	ErrorColumns bool
	// Method selects the error-estimation strategy.
	Method ErrorMethod
	// Planner tuning.
	Planner PlannerConfig
	// MaxGroupsPerSample declines AQP when the estimated group cardinality
	// exceeds this fraction of the sample size (the paper's "AQP not
	// feasible due to high-cardinality grouping attributes").
	MaxGroupsFraction float64
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions() Options {
	return Options{
		IOBudget:          0.02,
		Confidence:        0.95,
		Planner:           DefaultPlannerConfig(),
		MaxGroupsFraction: 0.08,
	}
}

// Middleware is the VerdictDB core: it intercepts queries, rewrites the
// supported ones against sample tables, and rewrites answers back.
type Middleware struct {
	db   drivers.DB
	cat  *meta.Catalog
	opts Options
}

// New builds a middleware over an underlying database and sample catalog.
func New(db drivers.DB, cat *meta.Catalog, opts Options) *Middleware {
	if opts.Confidence == 0 {
		opts.Confidence = 0.95
	}
	if opts.IOBudget == 0 {
		opts.IOBudget = 0.02
	}
	if opts.Planner.TopK == 0 {
		opts.Planner = DefaultPlannerConfig()
	}
	if opts.MaxGroupsFraction == 0 {
		opts.MaxGroupsFraction = 0.08
	}
	opts.Planner.IOBudget = opts.IOBudget
	return &Middleware{db: db, cat: cat, opts: opts}
}

// Options returns the middleware's effective options.
func (m *Middleware) Options() Options { return m.opts }

// DB returns the underlying database handle.
func (m *Middleware) DB() drivers.DB { return m.db }

// Query runs one SQL statement through the AQP pipeline.
func (m *Middleware) Query(sql string) (*Answer, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		// DDL/DML pass straight through.
		if err := m.db.Exec(sql); err != nil {
			return nil, err
		}
		return &Answer{Status: PassNoAggregates, Confidence: m.opts.Confidence}, nil
	}
	return m.QuerySelect(sel, sql)
}

// QuerySelect runs a parsed SELECT through the AQP pipeline. original is
// the user's SQL for passthrough execution.
func (m *Middleware) QuerySelect(sel *sqlparser.SelectStmt, original string) (*Answer, error) {
	status := Analyze(sel)
	if status != Supported {
		return m.passthrough(original, status)
	}
	flat, err := FlattenComparisonSubqueries(sel)
	if err != nil || flat == nil {
		return m.passthrough(original, PassOther)
	}

	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(flat, occ); err != nil {
		return m.passthrough(original, PassOther)
	}
	for _, o := range occ {
		if n, err := m.db.RowCount(o.Base); err == nil {
			o.Rows = n
		}
	}

	all, err := m.cat.List()
	if err != nil {
		return nil, err
	}
	planner := NewPlanner(m.opts.Planner, all)
	plans, extremeIdx, ok, err := planner.PlanQuery(flat, occ)
	if err != nil || !ok {
		return m.passthrough(original, PassOther)
	}

	// High-cardinality grouping check (Section 6.2: tq-3/8/15 declined).
	if decline, err := m.groupCardinalityTooHigh(flat, plans[0].Plan); err == nil && decline {
		return m.passthrough(original, PassOther)
	}

	multi := len(plans) > 1 || len(extremeIdx) > 0
	if multi && flat.Having != nil {
		// HAVING across merged partial plans is not reassembled; fall back.
		return m.passthrough(original, PassOther)
	}

	switch m.opts.Method {
	case MethodTraditionalSubsampling, MethodConsolidatedBootstrap:
		if multi {
			return m.passthrough(original, PassOther)
		}
		return m.runResamplingBaseline(flat, plans[0], original)
	}

	answer := &Answer{
		Approximate:  true,
		Status:       Supported,
		Confidence:   m.opts.Confidence,
		SampleTables: nil,
	}

	nItems := len(flat.Items)
	mg := newMerger(nItems)
	for _, cp := range plans {
		ro, err := Rewrite(flat, cp.Plan, cp.ItemIdx, !multi)
		if err != nil {
			return m.passthrough(original, PassOther)
		}
		if m.opts.Method == MethodNone {
			stripErrorColumns(ro)
		}
		rendered := drivers.Render(m.db, ro.Stmt)
		rs, elapsed, err := m.db.QueryTimed(rendered)
		if err != nil {
			// A stale catalog (sample table dropped outside VerdictDB) or a
			// dialect corner case must never break the user's query: fall
			// back to exact execution, like the paper's middleware.
			return m.passthrough(original, PassOther)
		}
		answer.RewrittenSQL = append(answer.RewrittenSQL, rendered)
		answer.SampleTables = append(answer.SampleTables, ro.SampleTables...)
		answer.ElapsedNanos += elapsed.Nanoseconds()
		answer.RowsScanned += rs.RowsScanned
		mg.add(rs, ro.Columns)
	}

	// Extreme statistics answered exactly (Section 2.2 decomposition).
	if len(extremeIdx) > 0 {
		rs, cols, elapsed, err := m.runExtremeQuery(flat, extremeIdx)
		if err != nil {
			return m.passthrough(original, PassOther)
		}
		answer.ElapsedNanos += elapsed
		answer.RowsScanned += rs.RowsScanned
		mg.add(rs, cols)
	}

	// Materialize merged rows in original item order.
	names := make([]string, nItems)
	for i, it := range flat.Items {
		if it.Alias != "" {
			names[i] = it.Alias
		} else {
			names[i] = deriveName(it.Expr, i)
		}
	}
	answer.Cols = names
	answer.Rows, answer.StdErr = mg.result(names)

	if multi {
		if err := m.applyOrderLimit(flat, answer); err != nil {
			return m.passthrough(original, PassOther)
		}
	}

	// Post-execution high-cardinality guard: grouping expressions the
	// pre-probe skipped (derived columns, expressions) can still explode
	// the group count; if the result spreads the sample across too many
	// groups, the estimates are meaningless — run exactly instead. Only
	// applicable when no LIMIT truncated the output.
	if len(flat.GroupBy) > 0 && flat.Limit == nil &&
		float64(len(answer.Rows)) > m.opts.MaxGroupsFraction*float64(maxI64(answer.RowsScanned, 1)) {
		return m.passthrough(original, PassOther)
	}

	// High-level Accuracy Contract (Section 2.4).
	if m.opts.MinAccuracy > 0 {
		if answer.MaxRelativeError() > (1 - m.opts.MinAccuracy) {
			exact, err := m.passthrough(original, Supported)
			if err != nil {
				return nil, err
			}
			exact.HACFallback = true
			return exact, nil
		}
	}

	if m.opts.ErrorColumns {
		appendErrorColumns(answer)
	}
	return answer, nil
}

// passthrough executes the original SQL unchanged.
func (m *Middleware) passthrough(sql string, status SupportStatus) (*Answer, error) {
	rs, elapsed, err := m.db.QueryTimed(sql)
	if err != nil {
		return nil, err
	}
	a := exactAnswer(rs, status, m.opts.Confidence)
	a.ElapsedNanos = elapsed.Nanoseconds()
	return a, nil
}

// OccurrencesOf collects a query's table occurrences for callers that drive
// the planner or rewriter directly (benchmark harnesses, ablations).
func OccurrencesOf(sel *sqlparser.SelectStmt) (map[string]*TableOccurrence, error) {
	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(sel, occ); err != nil {
		return nil, err
	}
	return occ, nil
}

// collectAllOccurrences gathers occurrences from the top-level FROM and all
// derived-table FROMs. Conflicting aliases across scopes disable sampling
// for that alias (both scopes read base tables).
func collectAllOccurrences(sel *sqlparser.SelectStmt, out map[string]*tableOccurrence) error {
	if err := collectOccurrences(sel.From, out); err != nil {
		return err
	}
	var walkDerived func(t sqlparser.TableExpr) error
	walkDerived = func(t sqlparser.TableExpr) error {
		switch tt := t.(type) {
		case *sqlparser.DerivedTable:
			sub := map[string]*tableOccurrence{}
			if err := collectOccurrences(tt.Select.From, sub); err != nil {
				return err
			}
			for a, o := range sub {
				if _, dup := out[a]; dup {
					delete(out, a) // ambiguous alias: fall back to base
					continue
				}
				out[a] = o
			}
			return nil
		case *sqlparser.JoinExpr:
			if err := walkDerived(tt.Left); err != nil {
				return err
			}
			return walkDerived(tt.Right)
		}
		return nil
	}
	return walkDerived(sel.From)
}

// groupCardinalityTooHigh estimates the query's group cardinality and
// declines AQP when the chosen samples would spread too thin across groups
// (the paper's "AQP not feasible for high-cardinality grouping attributes",
// Section 6.2). Each simple grouping column is probed with ndv() against
// the sample table that contains it, or the base table of its occurrence
// (dimension tables are cheap to scan); the largest per-column cardinality
// lower-bounds the group count. Non-column grouping expressions are skipped
// — the probe is deliberately best-effort and conservative.
func (m *Middleware) groupCardinalityTooHigh(sel *sqlparser.SelectStmt, plan CandidatePlan) (bool, error) {
	if len(sel.GroupBy) == 0 {
		return false, nil
	}
	var sampleRows int64
	var probeTables []string
	for _, c := range plan.Choices {
		if c.Sample != nil {
			sampleRows += c.Sample.SampleRows
			probeTables = append(probeTables, c.Sample.SampleTable)
		} else if c.Occurrence != nil {
			probeTables = append(probeTables, c.Occurrence.Base)
		}
	}
	if sampleRows == 0 {
		return false, nil
	}
	maxNdv := int64(0)
	for _, g := range sel.GroupBy {
		cr, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			continue
		}
		for _, tbl := range probeTables {
			rs, err := m.db.Query(fmt.Sprintf("select ndv(%s) from %s", cr.Name, tbl))
			if err != nil {
				continue // column not in this table
			}
			if v, okV := engine.ToInt(rs.Rows[0][0]); okV && v > maxNdv {
				maxNdv = v
			}
			break
		}
	}
	return float64(maxNdv) > m.opts.MaxGroupsFraction*float64(sampleRows), nil
}

// runExtremeQuery answers min/max items exactly from base tables.
func (m *Middleware) runExtremeQuery(sel *sqlparser.SelectStmt, extremeIdx []int) (*engine.ResultSet, []OutputCol, int64, error) {
	ex := &sqlparser.SelectStmt{
		From:  sqlparser.CloneTable(sel.From),
		Where: sqlparser.CloneExpr(sel.Where),
	}
	for _, g := range sel.GroupBy {
		ex.GroupBy = append(ex.GroupBy, sqlparser.CloneExpr(g))
	}
	var cols []OutputCol
	want := map[int]bool{}
	for _, i := range extremeIdx {
		want[i] = true
	}
	for i, it := range sel.Items {
		isAgg := it.Expr != nil && sqlparser.ContainsAggregate(it.Expr)
		name := it.Alias
		if name == "" {
			name = deriveName(it.Expr, i)
		}
		switch {
		case !isAgg:
			ex.Items = append(ex.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: name})
			cols = append(cols, OutputCol{Kind: ColGroup, ItemIdx: i, Name: name})
		case want[i]:
			ex.Items = append(ex.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: name})
			cols = append(cols, OutputCol{Kind: ColAgg, ItemIdx: i, Name: name})
		}
	}
	rendered := drivers.Render(m.db, ex)
	rs, elapsed, err := m.db.QueryTimed(rendered)
	if err != nil {
		return nil, nil, 0, err
	}
	return rs, cols, elapsed.Nanoseconds(), nil
}

// applyOrderLimit sorts and truncates merged multi-plan answers in the
// middleware (ORDER BY and LIMIT were stripped from the partial queries).
func (m *Middleware) applyOrderLimit(sel *sqlparser.SelectStmt, a *Answer) error {
	if len(sel.OrderBy) > 0 {
		type keyed struct {
			row  []engine.Value
			errs []float64
			key  []engine.Value
		}
		items := make([]keyed, len(a.Rows))
		for r := range a.Rows {
			k := keyed{row: a.Rows[r], errs: a.StdErr[r]}
			for _, ob := range sel.OrderBy {
				ci, err := m.orderColumn(sel, ob.Expr, a)
				if err != nil {
					return err
				}
				k.key = append(k.key, a.Rows[r][ci])
			}
			items[r] = k
		}
		sort.SliceStable(items, func(x, y int) bool {
			for j, ob := range sel.OrderBy {
				va, vb := items[x].key[j], items[y].key[j]
				var c int
				switch {
				case va == nil && vb == nil:
					c = 0
				case va == nil:
					c = -1
				case vb == nil:
					c = 1
				default:
					c = engine.Compare(va, vb)
				}
				if ob.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for r := range items {
			a.Rows[r] = items[r].row
			a.StdErr[r] = items[r].errs
		}
	}
	if sel.Limit != nil {
		if lit, ok := sel.Limit.(*sqlparser.Literal); ok {
			if n, ok2 := lit.Val.(int64); ok2 && int64(len(a.Rows)) > n {
				a.Rows = a.Rows[:n]
				a.StdErr = a.StdErr[:n]
			}
		}
	}
	return nil
}

// orderColumn resolves an ORDER BY term to a merged output column index.
func (m *Middleware) orderColumn(sel *sqlparser.SelectStmt, e sqlparser.Expr, a *Answer) (int, error) {
	if lit, ok := e.(*sqlparser.Literal); ok {
		if p, isInt := lit.Val.(int64); isInt && p >= 1 && int(p) <= len(a.Cols) {
			return int(p - 1), nil
		}
	}
	if cr, ok := e.(*sqlparser.ColumnRef); ok && cr.Table == "" {
		if ci := a.ColIndex(cr.Name); ci >= 0 {
			return ci, nil
		}
	}
	f := sqlparser.FormatExpr(e)
	for i, it := range sel.Items {
		if it.Expr != nil && sqlparser.FormatExpr(it.Expr) == f {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: cannot resolve ORDER BY term %s after plan merge", f)
}

// stripErrorColumns removes _err outputs for the no-error-estimation
// baseline.
func stripErrorColumns(ro *RewriteOutput) {
	kept := ro.Stmt.Items[:0]
	var keptCols []OutputCol
	for i, oc := range ro.Columns {
		if oc.Kind == ColErr {
			continue
		}
		kept = append(kept, ro.Stmt.Items[i])
		keptCols = append(keptCols, oc)
	}
	ro.Stmt.Items = kept
	ro.Columns = keptCols
}

// appendErrorColumns exposes half-width confidence intervals as extra
// user-visible columns named <col>_err.
func appendErrorColumns(a *Answer) {
	var aggCols []int
	for c := range a.Cols {
		for r := range a.Rows {
			if !math.IsNaN(a.StdErr[r][c]) {
				aggCols = append(aggCols, c)
				break
			}
		}
	}
	for _, c := range aggCols {
		a.Cols = append(a.Cols, a.Cols[c]+"_err")
		for r := range a.Rows {
			lo, hi, ok := a.ConfidenceInterval(r, c)
			if ok {
				a.Rows[r] = append(a.Rows[r], (hi-lo)/2)
			} else {
				a.Rows[r] = append(a.Rows[r], nil)
			}
			a.StdErr[r] = append(a.StdErr[r], math.NaN())
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
