package core

import (
	"fmt"
	"math"
	"strings"

	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// vsource summarizes the variational structure of a (possibly joined) FROM
// subtree after sample substitution: the per-tuple inclusion probability
// expression, the subsample-id expression, and the subsample count b.
type vsource struct {
	prob sqlparser.Expr // nil means probability 1 (exact relation)
	sid  sqlparser.Expr // nil means no subsample structure
	b    int64
	// hashed is true when the subtree consists solely of hash-aligned
	// universe samples, whose sid values agree on join keys.
	hashed bool
	// hashedCols holds "alias.column" keys the universe samples hash on.
	hashedCols map[string]bool
	// ratio is the effective sampling ratio of the subtree (min over an
	// aligned hashed chain, product otherwise); used by count-distinct.
	ratio float64
	// replicated is true when each subsample's rows are complete estimates
	// of population quantities (a Bernoulli-sampled nested variational
	// table, Section 5.2): sums/counts over such rows combine by weighted
	// MEAN across subsamples rather than by Horvitz-Thompson summation.
	replicated bool
}

func exactSource() vsource { return vsource{ratio: 1} }

// substituteFrom replaces base tables with their planned samples and
// computes the combined variational structure. Derived tables with
// aggregates are rewritten per Section 5.2 via rewriteNested.
func (rw *rewriter) substituteFrom(from sqlparser.TableExpr) (sqlparser.TableExpr, vsource, error) {
	switch t := from.(type) {
	case *sqlparser.TableRef:
		alias := t.Alias
		if alias == "" {
			alias = baseName(t.Name)
		}
		choice, ok := rw.plan.Choices[strings.ToLower(alias)]
		if !ok || choice.Sample == nil {
			return &sqlparser.TableRef{Name: t.Name, Alias: t.Alias}, exactSource(), nil
		}
		si := choice.Sample
		newRef := &sqlparser.TableRef{Name: si.SampleTable, Alias: alias}
		src := vsource{
			prob:  &sqlparser.ColumnRef{Table: alias, Name: sampling.ProbCol},
			sid:   &sqlparser.ColumnRef{Table: alias, Name: sampling.SidCol},
			b:     si.Subsamples,
			ratio: si.EffectiveRatio(),
		}
		if si.Type == sqlparser.HashedSample {
			src.hashed = true
			src.hashedCols = map[string]bool{}
			for _, c := range si.Columns {
				src.hashedCols[strings.ToLower(alias)+"."+c] = true
			}
			src.ratio = si.Ratio // the universe inclusion probability
		}
		if rw.block != nil && strings.ToLower(alias) == rw.block.Alias {
			// Progressive prefix: restrict the scan to blocks 1..Bound and
			// fold the prefix row fraction into the inclusion probability so
			// HT sums stay unbiased over the partial scan.
			src.prob = &sqlparser.BinaryExpr{Op: "*", L: src.prob, R: floatLit(rw.block.Frac)}
			rw.blockPred = &sqlparser.BinaryExpr{
				Op: "<=",
				L:  &sqlparser.ColumnRef{Table: alias, Name: sampling.BlockCol},
				R:  intLit(rw.block.Bound),
			}
			rw.blockApplied = true
		}
		rw.sampleTables = append(rw.sampleTables, si.SampleTable)
		return newRef, src, nil
	case *sqlparser.DerivedTable:
		if sqlparser.HasAggregates(t.Select) {
			inner, info, err := rw.rewriteNested(t.Select)
			if err != nil {
				return nil, vsource{}, err
			}
			if info.b == 0 {
				// Nested block used no samples; keep it exact.
				return &sqlparser.DerivedTable{Select: sqlparser.CloneSelect(t.Select), Alias: t.Alias}, exactSource(), nil
			}
			dt := &sqlparser.DerivedTable{Select: inner, Alias: t.Alias}
			src := vsource{
				sid:        &sqlparser.ColumnRef{Table: t.Alias, Name: sampling.SidCol},
				b:          info.b,
				ratio:      1,
				replicated: true,
			}
			if info.complete {
				src.replicated = false
				// Universe-sampled complete groups: each group row exists
				// with probability τ, so the enclosing level applies HT
				// scaling with that constant probability.
				src.prob = floatLit(info.ratio)
				src.ratio = info.ratio
			}
			return dt, src, nil
		}
		// Non-aggregate derived table: substitute inside and surface the
		// variational columns through the projection.
		innerSel := sqlparser.CloneSelect(t.Select)
		newFrom, src, err := rw.substituteFrom(innerSel.From)
		if err != nil {
			return nil, vsource{}, err
		}
		innerSel.From = newFrom
		if bp := rw.takeBlockPred(); bp != nil {
			innerSel.Where = andExpr(innerSel.Where, bp)
		}
		if src.sid != nil {
			innerSel.Items = append(innerSel.Items,
				sqlparser.SelectItem{Expr: probOrOne(src.prob), Alias: sampling.ProbCol},
				sqlparser.SelectItem{Expr: src.sid, Alias: sampling.SidCol},
			)
			out := vsource{
				prob:       &sqlparser.ColumnRef{Table: t.Alias, Name: sampling.ProbCol},
				sid:        &sqlparser.ColumnRef{Table: t.Alias, Name: sampling.SidCol},
				b:          src.b,
				hashed:     src.hashed,
				hashedCols: nil, // alias mapping is lost through projection
				ratio:      src.ratio,
			}
			return &sqlparser.DerivedTable{Select: innerSel, Alias: t.Alias}, out, nil
		}
		return &sqlparser.DerivedTable{Select: innerSel, Alias: t.Alias}, exactSource(), nil
	case *sqlparser.JoinExpr:
		left, lsrc, err := rw.substituteFrom(t.Left)
		if err != nil {
			return nil, vsource{}, err
		}
		right, rsrc, err := rw.substituteFrom(t.Right)
		if err != nil {
			return nil, vsource{}, err
		}
		join := &sqlparser.JoinExpr{
			Left: left, Right: right, Type: t.Type,
			On: sqlparser.CloneExpr(t.On),
		}
		join.Using = append(join.Using, t.Using...)
		return join, combineSources(lsrc, rsrc, t.On), nil
	case nil:
		return nil, exactSource(), nil
	}
	return nil, vsource{}, fmt.Errorf("core: unsupported FROM element %T", from)
}

// combineSources merges the variational structure of two joined subtrees
// (Section 5.1, Theorem 4).
func combineSources(l, r vsource, on sqlparser.Expr) vsource {
	// Hash-aligned universe join: sids agree on the join key, so the left
	// structure carries over and the inclusion probability is the minimum.
	if l.hashed && r.hashed && joinedOnHashCols(on, l.hashedCols, r.hashedCols) {
		out := vsource{
			prob:   leastExpr(l.prob, r.prob),
			sid:    l.sid,
			b:      l.b,
			hashed: true,
			ratio:  math.Min(l.ratio, r.ratio),
		}
		out.hashedCols = map[string]bool{}
		//verdict:unordered set union into a map; insertion order is unobservable
		for k := range l.hashedCols {
			out.hashedCols[k] = true
		}
		//verdict:unordered set union into a map; insertion order is unobservable
		for k := range r.hashedCols {
			out.hashedCols[k] = true
		}
		return out
	}
	// Independent join: probabilities multiply; sids fold via h(i,j).
	out := vsource{
		prob:  mulExpr(l.prob, r.prob),
		ratio: l.ratio * r.ratio,
	}
	// A replicated variational table stays replicated only when joined with
	// exact relations; combining with another sampled relation loses the
	// clean replicate structure (the planner avoids such combos).
	if (l.replicated && r.prob == nil && r.sid == nil) ||
		(r.replicated && l.prob == nil && l.sid == nil) {
		out.replicated = true
	}
	switch {
	case l.sid == nil && r.sid == nil:
	case l.sid == nil:
		out.sid, out.b = r.sid, r.b
	case r.sid == nil:
		out.sid, out.b = l.sid, l.b
	default:
		out.sid, out.b = foldSid(l.sid, l.b, r.sid, r.b)
	}
	return out
}

// foldSid implements h(i,j) of Theorem 4 generalized to differing subsample
// counts: the left sids are split into r1 = floor(sqrt(b1)) blocks and the
// right into r2 = floor(sqrt(b2)) blocks; the joined subsample id is the
// block pair, giving r1*r2 joined subsamples:
//
//	h(i,j) = floor((i-1)/ceil(b1/r1)) * r2 + floor((j-1)/ceil(b2/r2)) + 1
func foldSid(lsid sqlparser.Expr, lb int64, rsid sqlparser.Expr, rb int64) (sqlparser.Expr, int64) {
	r1 := int64(math.Floor(math.Sqrt(float64(lb))))
	if r1 < 1 {
		r1 = 1
	}
	r2 := int64(math.Floor(math.Sqrt(float64(rb))))
	if r2 < 1 {
		r2 = 1
	}
	cell1 := (lb + r1 - 1) / r1
	cell2 := (rb + r2 - 1) / r2
	blockL := floorDiv(minusOne(lsid), cell1)
	blockR := floorDiv(minusOne(rsid), cell2)
	h := &sqlparser.BinaryExpr{
		Op: "+",
		L:  intLit(1),
		R: &sqlparser.BinaryExpr{
			Op: "+",
			L:  &sqlparser.BinaryExpr{Op: "*", L: blockL, R: intLit(r2)},
			R:  blockR,
		},
	}
	return h, r1 * r2
}

// joinedOnHashCols reports whether some equality conjunct of on equates a
// hashed column of the left subtree with a hashed column of the right.
func joinedOnHashCols(on sqlparser.Expr, lcols, rcols map[string]bool) bool {
	if on == nil || lcols == nil || rcols == nil {
		return false
	}
	found := false
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		be, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return
		}
		if be.Op == "AND" {
			walk(be.L)
			walk(be.R)
			return
		}
		if be.Op == "=" {
			l, lok := be.L.(*sqlparser.ColumnRef)
			r, rok := be.R.(*sqlparser.ColumnRef)
			if lok && rok {
				lk := strings.ToLower(l.Table) + "." + strings.ToLower(l.Name)
				rk := strings.ToLower(r.Table) + "." + strings.ToLower(r.Name)
				if (lcols[lk] && rcols[rk]) || (lcols[rk] && rcols[lk]) {
					found = true
				}
			}
		}
	}
	walk(on)
	return found
}

// Small expression constructors.

func intLit(v int64) sqlparser.Expr     { return &sqlparser.Literal{Val: v} }
func floatLit(v float64) sqlparser.Expr { return &sqlparser.Literal{Val: v} }

func minusOne(e sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.BinaryExpr{Op: "-", L: sqlparser.CloneExpr(e), R: intLit(1)}
}

func floorDiv(e sqlparser.Expr, d int64) sqlparser.Expr {
	return &sqlparser.FuncCall{Name: "floor", Args: []sqlparser.Expr{
		&sqlparser.BinaryExpr{Op: "/", L: e, R: intLit(d)},
	}}
}

func mulExpr(a, b sqlparser.Expr) sqlparser.Expr {
	switch {
	case a == nil:
		return cloneOrNil(b)
	case b == nil:
		return cloneOrNil(a)
	}
	return &sqlparser.BinaryExpr{Op: "*", L: sqlparser.CloneExpr(a), R: sqlparser.CloneExpr(b)}
}

func leastExpr(a, b sqlparser.Expr) sqlparser.Expr {
	switch {
	case a == nil:
		return cloneOrNil(b)
	case b == nil:
		return cloneOrNil(a)
	}
	return &sqlparser.FuncCall{Name: "least", Args: []sqlparser.Expr{
		sqlparser.CloneExpr(a), sqlparser.CloneExpr(b),
	}}
}

func cloneOrNil(e sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	return sqlparser.CloneExpr(e)
}

// probOrOne returns the probability expression, or the literal 1.0 for
// exact relations.
func probOrOne(prob sqlparser.Expr) sqlparser.Expr {
	if prob == nil {
		return floatLit(1)
	}
	return sqlparser.CloneExpr(prob)
}

// overProb builds expr / prob (or expr when prob is nil) — the
// Horvitz-Thompson weighting used in every partial aggregate.
func overProb(e sqlparser.Expr, prob sqlparser.Expr) sqlparser.Expr {
	if prob == nil {
		return e
	}
	return &sqlparser.BinaryExpr{Op: "/", L: e, R: sqlparser.CloneExpr(prob)}
}
