package core

import (
	"fmt"
	"strings"

	"verdictdb/internal/sqlparser"
)

// FlattenComparisonSubqueries rewrites correlated comparison subqueries in
// WHERE into joins with derived aggregate tables, as described in
// Section 2.2. Example:
//
//	... where price > (select avg(price) from order_products
//	                   where product = t1.product)
//
// becomes
//
//	... inner join (select product, avg(price) as verdict_sq_0
//	                from order_products group by product) as verdict_sqt_0
//	      on t1.product = verdict_sqt_0.product
//	    where price > verdict_sq_0
//
// Uncorrelated scalar subqueries are left alone (they execute exactly on
// base tables inside the rewritten query). The transformation mutates a
// clone, never the caller's AST.
func FlattenComparisonSubqueries(sel *sqlparser.SelectStmt) (*sqlparser.SelectStmt, error) {
	out := sqlparser.CloneSelect(sel)
	if out.Where == nil {
		return out, nil
	}
	counter := 0
	var flattenErr error
	out.Where = sqlparser.RewriteExpr(out.Where, func(e sqlparser.Expr) sqlparser.Expr {
		be, ok := e.(*sqlparser.BinaryExpr)
		if !ok || !isComparisonOp(be.Op) {
			return e
		}
		sq, ok := be.R.(*sqlparser.SubqueryExpr)
		if !ok {
			// Also handle subquery on the left.
			if lsq, lok := be.L.(*sqlparser.SubqueryExpr); lok {
				sq, be.L, be.R = lsq, be.R, be.L
				be.Op = flipComparison(be.Op)
				ok = true
			}
		}
		if !ok || sq == nil {
			return e
		}
		// Work on a clone so predicate nodes can be removed by identity.
		inner := sqlparser.CloneSelect(sq.Select)
		corr, innerCols, outerRefs, supported := correlationPredicates(inner)
		if !supported || len(corr) == 0 {
			return e // uncorrelated or unflattenable: leave as scalar subquery
		}
		drop := make(map[sqlparser.Expr]bool, len(corr))
		for _, p := range corr {
			drop[p] = true
		}
		inner.Where = removeConjuncts(inner.Where, drop)
		if len(inner.Items) != 1 || inner.Items[0].Expr == nil ||
			!sqlparser.ContainsAggregate(inner.Items[0].Expr) {
			flattenErr = fmt.Errorf("core: comparison subquery must select a single aggregate")
			return e
		}
		valAlias := fmt.Sprintf("verdict_sq_%d", counter)
		tblAlias := fmt.Sprintf("verdict_sqt_%d", counter)
		counter++
		inner.Items[0].Alias = valAlias
		for _, ic := range innerCols {
			inner.Items = append(inner.Items, sqlparser.SelectItem{
				Expr: &sqlparser.ColumnRef{Name: ic}, Alias: ic,
			})
			inner.GroupBy = append(inner.GroupBy, &sqlparser.ColumnRef{Name: ic})
		}
		// Join the derived table to the outer FROM.
		var on sqlparser.Expr
		for i, ic := range innerCols {
			eq := &sqlparser.BinaryExpr{
				Op: "=",
				L:  sqlparser.CloneExpr(outerRefs[i]),
				R:  &sqlparser.ColumnRef{Table: tblAlias, Name: ic},
			}
			if on == nil {
				on = eq
			} else {
				on = &sqlparser.BinaryExpr{Op: "AND", L: on, R: eq}
			}
		}
		out.From = &sqlparser.JoinExpr{
			Left:  out.From,
			Right: &sqlparser.DerivedTable{Select: inner, Alias: tblAlias},
			Type:  sqlparser.InnerJoin,
			On:    on,
		}
		return &sqlparser.BinaryExpr{
			Op: be.Op,
			L:  be.L,
			R:  &sqlparser.ColumnRef{Table: tblAlias, Name: valAlias},
		}
	})
	return out, flattenErr
}

func isComparisonOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func flipComparison(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// correlationPredicates finds conjuncts of the form inner_col = outer.col
// in the subquery's WHERE. It returns the inner grouping columns and the
// matching outer references, in corresponding order. supported is false if
// the WHERE mixes correlation with OR or uses non-equality correlation.
func correlationPredicates(sel *sqlparser.SelectStmt) (preds []sqlparser.Expr, innerCols []string, outerRefs []sqlparser.Expr, supported bool) {
	localAliases := map[string]bool{}
	var collect func(t sqlparser.TableExpr)
	collect = func(t sqlparser.TableExpr) {
		switch tt := t.(type) {
		case *sqlparser.TableRef:
			a := tt.Alias
			if a == "" {
				a = baseName(tt.Name)
			}
			localAliases[strings.ToLower(a)] = true
		case *sqlparser.DerivedTable:
			localAliases[strings.ToLower(tt.Alias)] = true
		case *sqlparser.JoinExpr:
			collect(tt.Left)
			collect(tt.Right)
		}
	}
	if sel.From != nil {
		collect(sel.From)
	}
	isOuterRef := func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		return ok && cr.Table != "" && !localAliases[strings.ToLower(cr.Table)]
	}
	isInnerCol := func(e sqlparser.Expr) (string, bool) {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return "", false
		}
		if cr.Table == "" || localAliases[strings.ToLower(cr.Table)] {
			return cr.Name, true
		}
		return "", false
	}

	supported = true
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		be, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			checkNoOuter(e, localAliases, &supported)
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "=":
			switch {
			case isOuterRef(be.R):
				if col, ok := isInnerCol(be.L); ok {
					preds = append(preds, be)
					innerCols = append(innerCols, col)
					outerRefs = append(outerRefs, be.R)
					return
				}
				supported = false
			case isOuterRef(be.L):
				if col, ok := isInnerCol(be.R); ok {
					preds = append(preds, be)
					innerCols = append(innerCols, col)
					outerRefs = append(outerRefs, be.L)
					return
				}
				supported = false
			default:
				checkNoOuter(e, localAliases, &supported)
			}
		default:
			checkNoOuter(e, localAliases, &supported)
		}
	}
	if sel.Where != nil {
		walk(sel.Where)
	}
	return preds, innerCols, outerRefs, supported
}

// checkNoOuter flags unsupported when e references outer columns in a
// position the flattener cannot handle.
func checkNoOuter(e sqlparser.Expr, local map[string]bool, supported *bool) {
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if cr, ok := x.(*sqlparser.ColumnRef); ok && cr.Table != "" && !local[strings.ToLower(cr.Table)] {
			*supported = false
		}
		return true
	})
}

// removeConjuncts rebuilds a conjunction without the listed nodes
// (identified by pointer identity).
func removeConjuncts(where sqlparser.Expr, drop map[sqlparser.Expr]bool) sqlparser.Expr {
	if where == nil {
		return nil
	}
	var keep []sqlparser.Expr
	var flatten func(e sqlparser.Expr)
	flatten = func(e sqlparser.Expr) {
		if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
			flatten(be.L)
			flatten(be.R)
			return
		}
		if !drop[e] {
			keep = append(keep, e)
		}
	}
	flatten(where)
	var out sqlparser.Expr
	for _, k := range keep {
		if out == nil {
			out = k
		} else {
			out = &sqlparser.BinaryExpr{Op: "AND", L: out, R: k}
		}
	}
	return out
}
