package stats

import (
	"fmt"
	"math"
	"strings"
)

// This file implements Lemma 1 and the staircase function of Section 3.2:
// VerdictDB builds stratified samples with a single Bernoulli-sampled
// SELECT, choosing each stratum's sampling probability so that at least m
// tuples survive with probability 1-delta.

// GFunc is g(p; n) from Lemma 1: the (1-delta)-lower-confidence count of a
// Binomial(n, p) under the normal approximation,
//
//	g(p; n) = sqrt(2 n p (1-p)) * erfcinv(2 (1-delta)) + n p.
//
// Sampling with probability p yields at least g(p;n) tuples out of n with
// probability 1-delta.
func GFunc(p float64, n int64, delta float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return float64(n)
	}
	nf := float64(n)
	return math.Sqrt(2*nf*p*(1-p))*ErfcInv(2*(1-delta)) + nf*p
}

// MinSamplingProb returns f_m(n) = g^{-1}(m; n): the smallest sampling
// probability p such that Bernoulli(p) sampling of n tuples yields at least
// m tuples with probability 1-delta. It returns 1 when no p < 1 suffices.
func MinSamplingProb(m, n int64, delta float64) float64 {
	if m <= 0 {
		return 0
	}
	if m >= n {
		return 1
	}
	// g(p; n) is monotonically increasing in p over (0,1) for the
	// probabilities of interest; bisect.
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if GFunc(mid, n, delta) >= float64(m) {
			hi = mid
		} else {
			lo = mid
		}
	}
	if hi > 1 {
		return 1
	}
	return hi
}

// StaircaseStep is one rung of the staircase function: strata with at least
// MinSize tuples are sampled with probability Prob.
type StaircaseStep struct {
	MinSize int64
	Prob    float64
}

// Staircase builds the descending staircase upper-bounding f_m(n) used in
// the stratified-sample CASE expression: for a stratum of size s, use the
// probability of the first step whose MinSize <= s (steps are ordered by
// decreasing MinSize); strata smaller than m are taken whole (prob 1).
//
// m is the minimum tuples required per stratum, maxSize the largest stratum
// size to cover, and levels the number of rungs between m and maxSize
// (log-spaced, since f_m(n) ~ m/n decays geometrically).
func Staircase(m, maxSize int64, delta float64, levels int) []StaircaseStep {
	if levels < 2 {
		levels = 2
	}
	if maxSize <= m {
		return []StaircaseStep{{MinSize: 0, Prob: 1}}
	}
	steps := make([]StaircaseStep, 0, levels+1)
	logLo, logHi := math.Log(float64(m)), math.Log(float64(maxSize))
	// Descend from the largest stratum size to m. Each rung's probability
	// is f_m evaluated at the rung's *lower* boundary, which upper-bounds
	// f_m(n) for every n in the rung (f_m decreases in n).
	for i := levels; i >= 1; i-- {
		frac := float64(i) / float64(levels)
		boundary := int64(math.Round(math.Exp(logLo + (logHi-logLo)*frac)))
		prev := int64(math.Round(math.Exp(logLo + (logHi-logLo)*float64(i-1)/float64(levels))))
		if boundary <= prev {
			continue
		}
		p := MinSamplingProb(m, prev, delta)
		if p > 1 {
			p = 1
		}
		steps = append(steps, StaircaseStep{MinSize: prev, Prob: p})
	}
	steps = append(steps, StaircaseStep{MinSize: 0, Prob: 1})
	return steps
}

// StaircaseCaseSQL renders the staircase into the CASE expression used in
// the stratified sampling query (Section 3.2):
//
//	case when strata_size >= 2000 then 0.011 when ... else 1 end
//
// sizeCol is the column holding the stratum size.
func StaircaseCaseSQL(steps []StaircaseStep, sizeCol string) string {
	var sb strings.Builder
	sb.WriteString("case")
	for _, s := range steps {
		if s.MinSize <= 0 {
			continue
		}
		fmt.Fprintf(&sb, " when %s >= %d then %.10g", sizeCol, s.MinSize, s.Prob)
	}
	sb.WriteString(" else 1 end")
	return sb.String()
}

// StaircaseProb returns the probability the staircase assigns to a stratum
// of the given size (mirrors the CASE expression in Go, for tests and for
// the integrated baseline).
func StaircaseProb(steps []StaircaseStep, size int64) float64 {
	for _, s := range steps {
		if size >= s.MinSize && s.MinSize > 0 {
			return s.Prob
		}
	}
	return 1
}
