package stats

import (
	"math"
	"math/rand"
	"sort"
)

// This file implements the four error-estimation methods compared in
// Sections 4 and 6.4-6.5 and Appendix B.3 of the paper, operating on an
// in-memory sample. The SQL-expressed form of variational subsampling lives
// in internal/core; these direct implementations power the statistical
// experiments (Figures 8, 12, 13, 14) where thousands of repetitions make
// SQL round-trips pointless.

// Interval is a two-sided confidence interval around an estimate.
type Interval struct {
	Estimate float64
	Lo, Hi   float64
}

// HalfWidth returns the half-width of the interval (symmetrized).
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Estimator names an aggregate estimated from a sample of a population of
// size N. For avg the estimator is the sample mean; for sum and count the
// sample statistic is scaled by N/n.
type Estimator int

// Supported estimators.
const (
	EstimateAvg Estimator = iota
	EstimateSum
	EstimateCount // count of sampled rows scaled to the population
)

func pointEstimate(kind Estimator, xs []float64, popN int64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	switch kind {
	case EstimateAvg:
		return Mean(xs)
	case EstimateSum:
		return Mean(xs) * float64(popN)
	case EstimateCount:
		return n * float64(popN) / n // placeholder; see CountEstimate
	}
	return 0
}

// CLTInterval computes a confidence interval via the central limit theorem:
// closed-form, no resampling.
func CLTInterval(kind Estimator, xs []float64, popN int64, confidence float64) Interval {
	n := float64(len(xs))
	if n < 2 {
		return Interval{}
	}
	z := ZScore(confidence)
	se := Stddev(xs) / math.Sqrt(n)
	est := pointEstimate(kind, xs, popN)
	switch kind {
	case EstimateAvg:
		return Interval{Estimate: est, Lo: est - z*se, Hi: est + z*se}
	case EstimateSum:
		scale := float64(popN)
		return Interval{Estimate: est, Lo: est - z*se*scale, Hi: est + z*se*scale}
	}
	return Interval{Estimate: est}
}

// BootstrapInterval computes a percentile-bootstrap confidence interval
// with b resamples of size n drawn with replacement — the O(b*n) classic
// the paper's middleware cannot afford.
func BootstrapInterval(kind Estimator, xs []float64, popN int64, confidence float64, b int, rng *rand.Rand) Interval {
	n := len(xs)
	if n == 0 || b <= 0 {
		return Interval{}
	}
	g0 := pointEstimate(kind, xs, popN)
	devs := make([]float64, 0, b)
	for j := 0; j < b; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[rng.Intn(n)]
		}
		mean := sum / float64(n)
		var gj float64
		switch kind {
		case EstimateAvg:
			gj = mean
		case EstimateSum:
			gj = mean * float64(popN)
		}
		devs = append(devs, g0-gj)
	}
	sort.Float64s(devs)
	alpha := 1 - confidence
	tLo := Quantile(devs, alpha/2)
	tHi := Quantile(devs, 1-alpha/2)
	return Interval{Estimate: g0, Lo: g0 - tHi, Hi: g0 - tLo}
}

// SubsamplingInterval implements traditional subsampling (Politis & Romano):
// b subsamples of size ns drawn without replacement, each of which may
// overlap. Construction costs O(b*ns) (plus the RNG work to choose
// members), and the intervals are scaled by sqrt(ns/n).
func SubsamplingInterval(kind Estimator, xs []float64, popN int64, confidence float64, b, ns int, rng *rand.Rand) Interval {
	n := len(xs)
	if n == 0 || b <= 0 || ns <= 0 || ns > n {
		return Interval{}
	}
	g0 := pointEstimate(kind, xs, popN)
	devs := make([]float64, 0, b)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for j := 0; j < b; j++ {
		// Partial Fisher-Yates: choose ns distinct indices.
		var sum float64
		for i := 0; i < ns; i++ {
			k := i + rng.Intn(n-i)
			idx[i], idx[k] = idx[k], idx[i]
			sum += xs[idx[i]]
		}
		mean := sum / float64(ns)
		var gj float64
		switch kind {
		case EstimateAvg:
			gj = mean
		case EstimateSum:
			gj = mean * float64(popN)
		}
		devs = append(devs, (g0-gj)*math.Sqrt(float64(ns)/float64(n)))
	}
	sort.Float64s(devs)
	alpha := 1 - confidence
	tLo := Quantile(devs, alpha/2)
	tHi := Quantile(devs, 1-alpha/2)
	return Interval{Estimate: g0, Lo: g0 - tHi, Hi: g0 - tLo}
}

// VariationalInterval implements the paper's variational subsampling
// (Section 4.2, Theorem 2): a single O(n) pass assigns each tuple to at
// most one subsample; per-subsample estimates are then combined using the
// empirical distribution
//
//	L_n(x) = (1/b) Σ 1( sqrt(ns_i) (ĝ_i - ĝ_0) <= x )
//
// scaled back by sqrt(n) for the sample estimate's interval. Subsample
// sizes ns_i vary (binomial), which the per-term sqrt(ns_i) corrects.
func VariationalInterval(kind Estimator, xs []float64, popN int64, confidence float64, b, ns int, rng *rand.Rand) Interval {
	n := len(xs)
	if n == 0 || b <= 0 || ns <= 0 {
		return Interval{}
	}
	g0 := pointEstimate(kind, xs, popN)

	sums := make([]float64, b)
	counts := make([]int64, b)
	// Each tuple joins subsample i in [1,b] with probability ns/n each,
	// or no subsample with the remaining mass — one random draw per tuple.
	thresh := float64(b*ns) / float64(n)
	if thresh > 1 {
		thresh = 1
	}
	for _, x := range xs {
		u := rng.Float64()
		if u >= thresh {
			continue
		}
		sid := int(u / thresh * float64(b))
		if sid >= b {
			sid = b - 1
		}
		sums[sid] += x
		counts[sid]++
	}

	devs := make([]float64, 0, b)
	for i := 0; i < b; i++ {
		if counts[i] == 0 {
			continue
		}
		mean := sums[i] / float64(counts[i])
		var gi float64
		switch kind {
		case EstimateAvg:
			gi = mean
		case EstimateSum:
			gi = mean * float64(popN)
		}
		devs = append(devs, math.Sqrt(float64(counts[i]))*(gi-g0))
	}
	if len(devs) == 0 {
		return Interval{Estimate: g0}
	}
	sort.Float64s(devs)
	alpha := 1 - confidence
	scale := 1 / math.Sqrt(float64(n))
	tLo := Quantile(devs, alpha/2) * scale
	tHi := Quantile(devs, 1-alpha/2) * scale
	return Interval{Estimate: g0, Lo: g0 - tHi, Hi: g0 - tLo}
}

// CountEstimate estimates a population count from a Bernoulli sample:
// k sample rows satisfying a predicate, sampling ratio tau.
// The estimate is k/tau; its CLT standard error is sqrt(k (1-tau))/tau.
func CountEstimate(k int64, tau float64, confidence float64) Interval {
	if tau <= 0 {
		return Interval{}
	}
	est := float64(k) / tau
	se := math.Sqrt(float64(k)*(1-tau)) / tau
	z := ZScore(confidence)
	return Interval{Estimate: est, Lo: est - z*se, Hi: est + z*se}
}
