// Package stats implements the statistical machinery of VerdictDB: the
// inverse complementary error function and staircase sampling probability of
// Lemma 1, normal-distribution helpers for confidence intervals, and the
// error-estimation methods compared in the paper — central limit theorem
// (CLT), bootstrap, traditional subsampling, and the paper's contribution,
// variational subsampling (Section 4, Theorem 2).
package stats

import "math"

// ErfcInv returns the inverse of the complementary error function:
// erfc(ErfcInv(y)) = y for y in (0, 2). It uses a Newton refinement of a
// rational initial guess and is accurate to ~1e-12 over the usable range.
func ErfcInv(y float64) float64 {
	if y <= 0 {
		return math.Inf(1)
	}
	if y >= 2 {
		return math.Inf(-1)
	}
	x := NormQuantile(1-y/2) / math.Sqrt2
	// Newton iterations on f(x) = erfc(x) - y; f'(x) = -2/sqrt(pi) e^{-x^2}.
	for i := 0; i < 4; i++ {
		f := math.Erfc(x) - y
		d := -2 / math.Sqrt(math.Pi) * math.Exp(-x*x)
		if d == 0 {
			break
		}
		x -= f / d
	}
	return x
}

// NormQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation refined by one Halley step.
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the normal CDF.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormCDF is the standard normal cumulative distribution function.
func NormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// ZScore returns the two-sided z multiplier for the given confidence level
// (e.g. 0.95 -> 1.959964...).
func ZScore(confidence float64) float64 {
	if confidence <= 0 {
		return 0
	}
	if confidence >= 1 {
		return math.Inf(1)
	}
	return NormQuantile(0.5 + confidence/2)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the sample variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Stddev is the sample standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0..1) of xs by linear interpolation.
// xs must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
