package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErfcInvRoundTrip(t *testing.T) {
	for _, y := range []float64{0.001, 0.01, 0.1, 0.5, 1.0, 1.5, 1.9, 1.99} {
		x := ErfcInv(y)
		if got := math.Erfc(x); math.Abs(got-y) > 1e-9 {
			t.Errorf("erfc(ErfcInv(%v)) = %v", y, got)
		}
	}
}

func TestErfcInvProperty(t *testing.T) {
	f := func(u float64) bool {
		y := math.Mod(math.Abs(u), 1.98) + 0.01 // (0.01, 1.99)
		x := ErfcInv(y)
		return math.Abs(math.Erfc(x)-y) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // ~Phi(1)
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormQuantile(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestNormQuantileCDFInverse(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01
		return math.Abs(NormCDF(NormQuantile(p))-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZScore(t *testing.T) {
	if z := ZScore(0.95); math.Abs(z-1.959964) > 1e-4 {
		t.Errorf("z(0.95) = %v", z)
	}
	if z := ZScore(0.99); math.Abs(z-2.575829) > 1e-4 {
		t.Errorf("z(0.99) = %v", z)
	}
}

func TestMinSamplingProbGuarantee(t *testing.T) {
	// Empirically verify Lemma 1: Bernoulli sampling with f_m(n) yields at
	// least m tuples with probability >= 1-delta.
	rng := rand.New(rand.NewSource(1))
	const delta = 0.01
	for _, tc := range []struct{ m, n int64 }{{10, 100}, {100, 10000}, {50, 1000}} {
		p := MinSamplingProb(tc.m, tc.n, delta)
		if p <= 0 || p > 1 {
			t.Fatalf("f_%d(%d) = %v out of range", tc.m, tc.n, p)
		}
		failures := 0
		const trials = 2000
		for trial := 0; trial < trials; trial++ {
			var k int64
			for i := int64(0); i < tc.n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			if k < tc.m {
				failures++
			}
		}
		// Allow generous slack over delta for Monte Carlo noise.
		if rate := float64(failures) / trials; rate > 5*delta {
			t.Errorf("f_%d(%d)=%v violated guarantee: failure rate %v >> delta %v",
				tc.m, tc.n, p, rate, delta)
		}
	}
}

func TestMinSamplingProbMonotone(t *testing.T) {
	// f_m(n) decreases in n and increases in m.
	prev := 1.0
	for _, n := range []int64{100, 200, 500, 1000, 5000, 10000} {
		p := MinSamplingProb(50, n, 0.001)
		if p > prev+1e-12 {
			t.Errorf("f_50(%d)=%v not decreasing (prev %v)", n, p, prev)
		}
		prev = p
	}
	if MinSamplingProb(90, 100, 0.001) < MinSamplingProb(10, 100, 0.001) {
		t.Error("f_m not increasing in m")
	}
}

func TestMinSamplingProbEdges(t *testing.T) {
	if p := MinSamplingProb(0, 100, 0.001); p != 0 {
		t.Errorf("m=0: %v", p)
	}
	if p := MinSamplingProb(100, 100, 0.001); p != 1 {
		t.Errorf("m=n: %v", p)
	}
	if p := MinSamplingProb(200, 100, 0.001); p != 1 {
		t.Errorf("m>n: %v", p)
	}
}

func TestStaircaseCoversFm(t *testing.T) {
	steps := Staircase(100, 1_000_000, 0.001, 12)
	// The staircase probability must upper-bound f_m(n) for all n.
	for _, n := range []int64{150, 500, 2000, 10000, 123456, 999999} {
		sp := StaircaseProb(steps, n)
		fm := MinSamplingProb(100, n, 0.001)
		if sp < fm-1e-9 {
			t.Errorf("staircase(%d)=%v < f_m=%v", n, sp, fm)
		}
	}
	// Strata smaller than m are taken whole.
	if p := StaircaseProb(steps, 50); p != 1 {
		t.Errorf("small stratum prob %v", p)
	}
}

func TestStaircaseCaseSQL(t *testing.T) {
	steps := Staircase(10, 1000, 0.001, 4)
	sql := StaircaseCaseSQL(steps, "strata_size")
	if len(sql) == 0 || sql[:4] != "case" {
		t.Fatalf("sql: %s", sql)
	}
	for _, want := range []string{"when strata_size >=", "else 1 end"} {
		if !contains(sql, want) {
			t.Errorf("missing %q in %s", want, sql)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func gaussianSample(n int, mean, sd float64, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + sd*rng.NormFloat64()
	}
	return xs
}

func TestCLTIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := gaussianSample(1000, 10, 10, rng)
		iv := CLTInterval(EstimateAvg, xs, 0, 0.95)
		if iv.Lo <= 10 && 10 <= iv.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CLT 95%% coverage = %v", rate)
	}
}

func TestEstimatorIntervalsAgree(t *testing.T) {
	// All four methods should report similar interval widths on the same
	// large sample (Figure 8b's convergence claim).
	rng := rand.New(rand.NewSource(3))
	xs := gaussianSample(100_000, 10, 10, rng)
	clt := CLTInterval(EstimateAvg, xs, 0, 0.95)
	boot := BootstrapInterval(EstimateAvg, xs, 0, 0.95, 200, rng)
	ns := int(math.Sqrt(float64(len(xs))))
	sub := SubsamplingInterval(EstimateAvg, xs, 0, 0.95, 200, ns, rng)
	vsub := VariationalInterval(EstimateAvg, xs, 0, 0.95, len(xs)/ns, ns, rng)
	w0 := clt.HalfWidth()
	for name, iv := range map[string]Interval{"bootstrap": boot, "subsampling": sub, "variational": vsub} {
		w := iv.HalfWidth()
		if w < 0.5*w0 || w > 2*w0 {
			t.Errorf("%s half-width %v far from CLT %v", name, w, w0)
		}
	}
}

func TestVariationalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const trials = 300
	covered := 0
	for i := 0; i < trials; i++ {
		xs := gaussianSample(10_000, 10, 10, rng)
		ns := 100
		iv := VariationalInterval(EstimateAvg, xs, 0, 0.95, len(xs)/ns, ns, rng)
		if iv.Lo <= 10 && 10 <= iv.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.85 {
		t.Errorf("variational 95%% coverage too low: %v", rate)
	}
}

func TestSumEstimatorScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Population of 1M values with mean 10 -> true sum 10M. Sample 1%.
	xs := gaussianSample(10_000, 10, 5, rng)
	iv := CLTInterval(EstimateSum, xs, 1_000_000, 0.95)
	if iv.Estimate < 9e6 || iv.Estimate > 11e6 {
		t.Errorf("sum estimate %v", iv.Estimate)
	}
	if iv.Lo >= iv.Estimate || iv.Hi <= iv.Estimate {
		t.Errorf("degenerate interval %+v", iv)
	}
}

func TestCountEstimate(t *testing.T) {
	iv := CountEstimate(1000, 0.01, 0.95)
	if iv.Estimate != 100_000 {
		t.Errorf("count estimate %v", iv.Estimate)
	}
	if iv.HalfWidth() <= 0 {
		t.Error("zero-width count interval")
	}
}

func TestQuantileHelper(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty %v", q)
	}
}

func TestVarianceWelfordMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := gaussianSample(100, 5, 3, rng)
		v := Variance(xs)
		// direct two-pass
		m := Mean(xs)
		var s float64
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		want := s / float64(len(xs)-1)
		return math.Abs(v-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
