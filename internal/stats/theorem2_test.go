package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These tests check Theorem 2 empirically: the empirical distribution
// L_n(x) built from variational subsamples converges to the true sampling
// distribution J_n(x) of the estimator.

// ksDistance computes the Kolmogorov-Smirnov distance between two sorted
// samples' empirical CDFs.
func ksDistance(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	worst := 0.0
	for i < len(a) && j < len(b) {
		var x float64
		if a[i] <= b[j] {
			x = a[i]
			i++
		} else {
			x = b[j]
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if d := math.Abs(fa - fb); d > worst {
			worst = d
		}
		_ = x
	}
	return worst
}

// variationalDeviations draws one sample of size n from a N(mu, sigma)
// population and returns the scaled per-subsample deviations
// sqrt(ns_i) * (g_i - g_0) — the terms of L_n(x) in Theorem 2.
func variationalDeviations(n, ns int, mu, sigma float64, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = mu + sigma*rng.NormFloat64()
		sum += xs[i]
	}
	g0 := sum / float64(n)
	b := n / ns
	sums := make([]float64, b)
	counts := make([]int64, b)
	for _, x := range xs {
		sid := rng.Intn(b)
		sums[sid] += x
		counts[sid]++
	}
	var out []float64
	for i := 0; i < b; i++ {
		if counts[i] == 0 {
			continue
		}
		gi := sums[i] / float64(counts[i])
		out = append(out, math.Sqrt(float64(counts[i]))*(gi-g0))
	}
	return out
}

func TestTheorem2Convergence(t *testing.T) {
	// The scaled deviations sqrt(ns_i)(g_i - g_0) should be distributed as
	// sqrt(n)(g_0 - mu) is — i.e. both approach N(0, sigma^2). Compare the
	// empirical L_n against the true sampling distribution (many fresh
	// samples) via KS distance, which must shrink as n grows.
	rng := rand.New(rand.NewSource(11))
	const mu, sigma = 10.0, 10.0

	ksAt := func(n int) float64 {
		ns := int(math.Sqrt(float64(n)))
		// L_n from a few sample draws (each contributes b deviations).
		var ln []float64
		for trial := 0; trial < 10; trial++ {
			ln = append(ln, variationalDeviations(n, ns, mu, sigma, rng)...)
		}
		// True distribution of sqrt(n)(mean - mu): exactly N(0, sigma^2).
		truth := make([]float64, len(ln))
		for i := range truth {
			truth[i] = sigma * rng.NormFloat64()
		}
		return ksDistance(ln, truth)
	}

	small := ksAt(1_000)
	large := ksAt(100_000)
	if large > 0.12 {
		t.Errorf("L_n far from true distribution at n=100k: KS=%.3f", large)
	}
	if large > small+0.05 {
		t.Errorf("KS distance grew with n: %.3f -> %.3f", small, large)
	}
}

func TestTheorem2QuantilesMatchNormal(t *testing.T) {
	// The 2.5% and 97.5% quantiles of the scaled deviations should sit near
	// ±1.96 sigma, which is exactly what the middleware's error expression
	// relies on.
	rng := rand.New(rand.NewSource(12))
	var devs []float64
	for trial := 0; trial < 20; trial++ {
		devs = append(devs, variationalDeviations(50_000, 224, 10, 10, rng)...)
	}
	sort.Float64s(devs)
	lo := Quantile(devs, 0.025)
	hi := Quantile(devs, 0.975)
	if math.Abs(hi-19.6) > 3 || math.Abs(lo+19.6) > 3 {
		t.Errorf("quantiles [%.2f, %.2f] far from ±19.6", lo, hi)
	}
}

func TestSubsampleSizesBinomial(t *testing.T) {
	// Definition 1: subsample sizes follow Binomial(n, ns/n); their mean
	// must be ~ns and the empty-subsample fraction negligible for ns >> 1.
	rng := rand.New(rand.NewSource(13))
	const n, ns = 40_000, 200
	b := n / ns
	counts := make([]int, b)
	for i := 0; i < n; i++ {
		counts[rng.Intn(b)]++
	}
	var sum float64
	empty := 0
	for _, c := range counts {
		sum += float64(c)
		if c == 0 {
			empty++
		}
	}
	mean := sum / float64(b)
	if math.Abs(mean-ns) > 1 {
		t.Errorf("mean subsample size %.1f want %d", mean, ns)
	}
	if empty > 0 {
		t.Errorf("%d empty subsamples at ns=%d", empty, ns)
	}
}
