//go:build faultinject

package verdictdb

// Deterministic fault-injection tests (built only with -tags faultinject):
// synthetic panics, errors, and stalls armed at named engine/core sites must
// surface as the documented typed errors on the injected query alone, with
// the connection serving byte-identical answers once disarmed. CI runs this
// file under -race.

import (
	"context"
	"errors"
	"testing"
	"time"

	"verdictdb/internal/faultpoint"
)

func TestFaultpointEnabled(t *testing.T) {
	if !faultpoint.Enabled() {
		t.Fatal("built with -tags faultinject but faultpoint.Enabled() is false")
	}
}

// TestInjectedScanPanicContained arms a panic inside the vectorized scan's
// chunk loop — i.e. inside morsel workers — and asserts it comes back as
// *InternalError carrying the synthetic PanicValue, the process survives,
// and after disarming the same connection returns answers byte-identical to
// the pre-fault baseline.
func TestInjectedScanPanicContained(t *testing.T) {
	defer faultpoint.Reset()
	conn := instaConn(t)
	const sql = "select reordered, avg(price) as p, count(*) as c from order_products group by reordered order by reordered"

	baseline, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	faultpoint.SetPanic("engine.scan.chunk")
	_, err = conn.Query(sql)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if pv, ok := ie.Panic.(faultpoint.PanicValue); !ok || pv.Site != "engine.scan.chunk" {
		t.Fatalf("panic value: %#v", ie.Panic)
	}
	if ie.Query == "" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing query/stack: %+v", ie)
	}

	faultpoint.Clear("engine.scan.chunk")
	again, err := conn.Query(sql)
	if err != nil {
		t.Fatalf("query after disarm: %v", err)
	}
	assertAnswersIdentical(t, "post-fault", baseline, again)
	if faultpoint.Count("engine.scan.chunk") == 0 {
		t.Fatal("site was never hit")
	}
}

// TestInjectedQueryBoundaryPanic arms the top-of-query site: even a crash
// before any worker spawns must surface as *InternalError, not kill the
// process, and must NOT trigger the middleware's exact-execution fallback.
func TestInjectedQueryBoundaryPanic(t *testing.T) {
	defer faultpoint.Reset()
	conn := instaConn(t)
	faultpoint.SetPanic("engine.query")
	a, err := conn.Query("select count(*) as c from order_products")
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got a=%v err=%v", a, err)
	}
}

// TestInjectedProgressivePrefixError arms an error between block prefixes:
// progressive execution must return it as-is — aborted-query errors never
// fall back to passthrough.
func TestInjectedProgressivePrefixError(t *testing.T) {
	defer faultpoint.Reset()
	conn := instaConn(t)
	sentinel := errors.New("faultpoint: prefix wire test")
	faultpoint.SetError("core.progressive.prefix", sentinel)
	a, err := conn.QueryWithAccuracyContext(context.Background(), "select count(*) as c from order_products", 1e-9)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want the injected error, got a=%v err=%v", a, err)
	}
}

// TestInjectedMergePanicContained arms a panic in the core-side prefix
// merge: containment at the middleware boundary must convert it, and the
// connection must keep working once disarmed.
func TestInjectedMergePanicContained(t *testing.T) {
	defer faultpoint.Reset()
	conn := instaConn(t)
	const sql = "select count(*) as c from order_products"
	faultpoint.SetPanic("core.merge.prefix")
	_, err := conn.QueryWithAccuracyContext(context.Background(), sql, 1e-9)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	faultpoint.Clear("core.merge.prefix")
	if a, err := conn.QueryWithAccuracyContext(context.Background(), sql, 0); err != nil || !a.Approximate {
		t.Fatalf("after disarm: a=%+v err=%v", a, err)
	}
}

// TestInjectedStallStaysCancellable stalls every scanned chunk and fires a
// cancel mid-stall: the per-chunk poll right after each stall must observe
// the cancel, so the query still returns promptly instead of serving out
// the full stalled scan.
func TestInjectedStallStaysCancellable(t *testing.T) {
	defer faultpoint.Reset()
	conn := instaConn(t)
	faultpoint.SetStall("engine.scan.chunk", 5*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := conn.QueryContext(ctx, "select o.order_dow, sum(op.price) as r from orders o inner join order_products op on o.order_id = op.order_id group by o.order_dow")
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("want nil or context.Canceled, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		if lag := time.Since(start); lag > 2*time.Second {
			t.Fatalf("cancel during stalls took %v", lag)
		}
	}
}
