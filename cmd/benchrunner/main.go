// benchrunner regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp speedup -engine redshift
//	benchrunner -exp estimators -tpch 0.2 -insta 0.2
//
// Experiments (DESIGN.md experiment index):
//
//	speedup      Figures 4, 9, 10 (per-query speedups and errors; -engine)
//	scaling      Figure 5  (speedup vs data size, fixed sample)
//	snappy       Figure 6  (integrated AQP comparison)
//	native       Table 2   (native approximate aggregates)
//	estimators   Figure 7  (error-estimation method overheads)
//	correctness  Figure 8a/8b (error-estimate calibration)
//	prep         Figure 11 (sample preparation time)
//	tradeoff-n   Figure 12 (accuracy/latency vs n)
//	tradeoff-b   Figure 13 (accuracy/latency vs b)
//	ns-sweep     Figure 14 (subsample-size choice)
//	ablation     design-choice ablations (sample type, Lemma 1 delta, top-k)
//	engine       engine hot-path microbenchmarks; writes BENCH_engine.json
//	             (-benchout) so successive PRs can diff perf
//	serve        concurrent serving layer: N goroutine clients over the
//	             mixed TPC-H/Insta workload; QPS, p50/p99 latency, and the
//	             plan/rewrite cache's cold-vs-warm effect; writes
//	             BENCH_serve.json (-serveout). With -deadline/-cancel-rate
//	             the round also measures robustness under churn: degraded
//	             (deadline-cut progressive) answer fraction and cancelled
//	             queries
//	progressive  accuracy-driven progressive execution over block-partitioned
//	             scrambles: time-to-accuracy curves and early-termination
//	             rates per target relative error; writes
//	             BENCH_progressive.json (-progout)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"verdictdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	engineName := flag.String("engine", "all", "engine for speedup: impala|sparksql|redshift|generic|all")
	tpchScale := flag.Float64("tpch", 0, "TPC-H scale override (1.0 = 600k lineitem)")
	instaScale := flag.Float64("insta", 0, "insta scale override (1.0 = 1M order_products)")
	trials := flag.Int("trials", 200, "Monte Carlo trials for correctness experiments")
	seed := flag.Int64("seed", 42, "random seed")
	benchOut := flag.String("benchout", "BENCH_engine.json", "engine microbenchmark JSON output (empty to skip)")
	serveOut := flag.String("serveout", "BENCH_serve.json", "serve experiment JSON output (empty to skip)")
	serveWorkers := flag.String("serveworkers", "1,2,4,8", "comma-separated worker counts for -exp serve")
	servePer := flag.Int("serveper", 32, "queries per worker per serve round")
	serveLatMs := flag.Float64("servelat", 25, "simulated per-query engine overhead for serve (ms, really slept)")
	serveDeadlineMs := flag.Float64("deadline", 0, "per-query deadline for -exp serve (ms; 0 disables); expiring deadlines return degraded progressive answers, recorded in BENCH_serve.json")
	serveCancelRate := flag.Float64("cancel-rate", 0, "fraction of -exp serve queries cancelled mid-flight (0..1)")
	progOut := flag.String("progout", "BENCH_progressive.json", "progressive experiment JSON output (empty to skip)")
	progTargets := flag.String("progtargets", "0.01,0.02,0.05,0.1", "comma-separated target relative errors for -exp progressive")
	progBlockRows := flag.Int64("progblockrows", 0, "scramble block size for -exp progressive (0 = experiment default)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	if *tpchScale > 0 {
		cfg.TPCHScale = *tpchScale
	}
	if *instaScale > 0 {
		cfg.InstaScale = *instaScale
	}

	w := os.Stdout
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("speedup", func() error {
		engines := []string{"redshift", "sparksql", "impala"}
		if *engineName != "all" {
			engines = []string{*engineName}
		}
		for _, e := range engines {
			if _, err := bench.SpeedupExperiment(w, cfg, e); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	})
	run("scaling", func() error {
		_, err := bench.ScalingExperiment(w, []float64{0.02, 0.1, 0.4, 1.0}, 6000, cfg.Seed)
		return err
	})
	run("snappy", func() error {
		_, err := bench.SnappyExperiment(w, cfg)
		return err
	})
	run("native", func() error {
		_, err := bench.NativeExperiment(w, cfg)
		return err
	})
	run("estimators", func() error {
		_, err := bench.EstimatorOverheadExperiment(w, cfg)
		return err
	})
	run("correctness", func() error {
		bench.CorrectnessSelectivity(w, 1_000_000, 10_000, *trials, cfg.Seed)
		fmt.Fprintln(w)
		bench.CorrectnessSampleSize(w, []int{100_000, 1_000_000, 10_000_000},
			maxInt(4, *trials/20), 100, cfg.Seed)
		return nil
	})
	run("prep", func() error {
		_, err := bench.PrepExperiment(w, cfg)
		return err
	})
	run("tradeoff-n", func() error {
		bench.TradeoffN(w, []int{10_000, 20_000, 40_000, 60_000, 80_000, 100_000},
			maxInt(3, *trials/20), 1000, cfg.Seed)
		return nil
	})
	run("tradeoff-b", func() error {
		bench.TradeoffB(w, 1_000_000, []int{10, 20, 50, 100, 200, 500},
			maxInt(3, *trials/40), cfg.Seed)
		return nil
	})
	run("ns-sweep", func() error {
		bench.NsSweep(w, 500_000, maxInt(5, *trials/10), cfg.Seed)
		return nil
	})
	run("engine", func() error {
		_, err := bench.EngineBench(w, *benchOut, 5)
		return err
	})
	run("serve", func() error {
		// The serving workload defaults to a lighter scale than the paper
		// experiments: throughput rounds re-execute every query dozens of
		// times, and the scaling signal is per-query overhead, not scan size.
		serveCfg := cfg
		if *tpchScale == 0 {
			serveCfg.TPCHScale = 0.05
		}
		if *instaScale == 0 {
			serveCfg.InstaScale = 0.05
		}
		var workers []int
		for _, part := range strings.Split(*serveWorkers, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, err := strconv.Atoi(part)
			if err != nil || n < 1 {
				return fmt.Errorf("bad -serveworkers entry %q", part)
			}
			workers = append(workers, n)
		}
		if *serveCancelRate < 0 || *serveCancelRate > 1 {
			return fmt.Errorf("bad -cancel-rate %g (want 0..1)", *serveCancelRate)
		}
		_, err := bench.ServeExperiment(w, serveCfg, *serveOut, workers, *servePer,
			time.Duration(*serveLatMs*float64(time.Millisecond)),
			time.Duration(*serveDeadlineMs*float64(time.Millisecond)), *serveCancelRate)
		return err
	})
	run("progressive", func() error {
		progCfg := cfg
		progCfg.BlockRows = *progBlockRows
		var targets []float64
		for _, part := range strings.Split(*progTargets, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			f, err := strconv.ParseFloat(part, 64)
			if err != nil || f < 0 {
				return fmt.Errorf("bad -progtargets entry %q", part)
			}
			targets = append(targets, f)
		}
		_, err := bench.ProgressiveExperiment(w, progCfg, *progOut, targets)
		return err
	})
	run("ablation", func() error {
		if _, err := bench.AblationSampleType(w, cfg.Seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
		bench.AblationStaircase(w, maxInt(500, *trials*5), cfg.Seed)
		fmt.Fprintln(w)
		_, err := bench.AblationPlannerTopK(w, cfg)
		return err
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
