// Command verdictlint is verdictdb's static-analysis suite: repo-contract
// analyzers (determinism, query lifecycle, accumulator completeness, error
// taxonomy, kernel purity, fault-injection hygiene) behind the `go vet
// -vettool` protocol.
//
// Usage:
//
//	verdictlint ./...                         # standalone (re-execs go vet)
//	go vet -vettool=$(which verdictlint) ./...
//
// Each analyzer can be disabled with -<name>=false. See internal/lint for
// the rules and their //verdict:* suppression tokens.
package main

import "verdictdb/internal/lint"

func main() {
	lint.Main(lint.All())
}
