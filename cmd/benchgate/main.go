// Command benchgate compares a freshly measured benchmark report against
// the committed BENCH_*.json baseline and exits nonzero when a metric
// regressed past its variance-aware threshold. `make bench-gate` wires it
// up: re-measure the engine suite, then gate against the checked-in
// numbers.
//
//	benchgate -kind engine -base BENCH_engine.json -cand /tmp/engine.json
//
// Thresholds default to bench.DefaultGateConfig and can be loosened or
// tightened per run with the -max-* flags (0 keeps the default).
package main

import (
	"flag"
	"fmt"
	"os"

	"verdictdb/internal/bench"
)

func main() {
	var (
		kind      = flag.String("kind", "engine", "report kind: engine, serve, or progressive")
		basePath  = flag.String("base", "BENCH_engine.json", "committed baseline report")
		candPath  = flag.String("cand", "", "candidate report from a fresh run (required)")
		maxNs     = flag.Float64("max-ns", 0, "override ns/op ratio limit (0 = default)")
		maxAllocs = flag.Float64("max-allocs", 0, "override allocs/op ratio limit (0 = default)")
		maxBytes  = flag.Float64("max-bytes", 0, "override bytes/op ratio limit (0 = default)")
		maxMedian = flag.Float64("max-median", 0, "override median-of-latency-ratios limit (0 = default)")
	)
	flag.Parse()
	if *candPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -cand is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.DefaultGateConfig()
	if *maxNs > 0 {
		cfg.MaxNsRatio = *maxNs
	}
	if *maxAllocs > 0 {
		cfg.MaxAllocsRatio = *maxAllocs
	}
	if *maxBytes > 0 {
		cfg.MaxBytesRatio = *maxBytes
	}
	if *maxMedian > 0 {
		cfg.MaxMedianRatio = *maxMedian
	}

	base, err := bench.LoadGateReport(*kind, *basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := bench.LoadGateReport(*kind, *candPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	violations, err := bench.Gate(*kind, base, cand, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %d regression(s) vs %s:\n", *kind, len(violations), *basePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  ", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %s: %s within thresholds of %s\n", *kind, *candPath, *basePath)
}
