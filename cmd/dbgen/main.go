// dbgen generates the benchmark datasets as CSV files, one file per table,
// so they can be loaded into any external system for comparison.
//
// Usage:
//
//	dbgen -dataset tpch -scale 0.5 -out ./data
//	dbgen -dataset insta -scale 1.0 -out ./data
//	dbgen -dataset synthetic -rows 1000000 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "tpch", "tpch|insta|synthetic")
	scale := flag.Float64("scale", 0.1, "scale factor (tpch/insta)")
	rows := flag.Int("rows", 1_000_000, "row count (synthetic)")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	eng := engine.NewSeeded(*seed)
	var err error
	switch *dataset {
	case "tpch":
		err = workload.LoadTPCH(eng, *scale, *seed)
	case "insta":
		err = workload.LoadInsta(eng, *scale, *seed)
	case "synthetic":
		err = workload.LoadSynthetic(eng, *rows, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range eng.TableNames() {
		if err := dumpTable(eng, name, *out); err != nil {
			fatal(err)
		}
	}
}

func dumpTable(eng *engine.Engine, name, dir string) error {
	t, err := eng.Lookup(name)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Cols))
	if err := t.ForEachRow(func(row []engine.Value) error {
		for i, v := range row {
			rec[i] = engine.ToStr(v)
		}
		return w.Write(rec)
	}); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
