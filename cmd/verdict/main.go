// verdict is an interactive SQL shell over VerdictDB: it loads one of the
// bundled datasets into the in-memory engine, builds default samples, and
// answers queries approximately, printing error bars for aggregate columns.
//
// Usage:
//
//	verdict -dataset insta -scale 0.2
//	> select order_dow, count(*) c from orders group by order_dow;
//	> show samples;
//	> explain select count(*) from orders;  -- show the AQP plan
//	> bypass select count(*) from orders;   -- exact
//	> \q
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "insta", "dataset to load: insta|tpch|none")
	scale := flag.Float64("scale", 0.1, "dataset scale factor")
	autoSample := flag.Bool("autosample", true, "build default samples after loading")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	eng := engine.NewSeeded(*seed)
	switch *dataset {
	case "insta":
		fmt.Printf("loading insta dataset at scale %.2f...\n", *scale)
		if err := workload.LoadInsta(eng, *scale, *seed); err != nil {
			fatal(err)
		}
	case "tpch":
		fmt.Printf("loading tpch dataset at scale %.2f...\n", *scale)
		if err := workload.LoadTPCH(eng, *scale, *seed); err != nil {
			fatal(err)
		}
	case "none":
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	conn, err := verdictdb.Open(drivers.NewGeneric(eng), verdictdb.Defaults())
	if err != nil {
		fatal(err)
	}
	if *autoSample && *dataset != "none" {
		fmt.Println("building samples...")
		tables := workload.InstaFactTables
		if *dataset == "tpch" {
			tables = workload.TPCHFactTables
		}
		for _, tbl := range tables {
			if err := conn.Exec(fmt.Sprintf("create uniform sample of %s ratio 0.01", tbl)); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Println("ready. Terminate statements with ';'. \\q quits.")

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("verdict> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		buf.WriteString(line)
		buf.WriteString(" ")
		if !strings.Contains(line, ";") {
			fmt.Print("      -> ")
			continue
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if sql != "" {
			runOne(conn, sql)
		}
		fmt.Print("verdict> ")
	}
}

func runOne(conn *verdictdb.Conn, sql string) {
	start := time.Now()
	a, err := conn.Query(sql)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if len(a.Cols) == 0 {
		fmt.Printf("ok (%v)\n", elapsed.Round(time.Microsecond))
		return
	}
	// Header.
	for _, c := range a.Cols {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	limit := len(a.Rows)
	if limit > 50 {
		limit = 50
	}
	for r := 0; r < limit; r++ {
		for c := range a.Cols {
			cell := fmt.Sprintf("%v", a.Rows[r][c])
			if f, ok := engine.ToFloat(a.Rows[r][c]); ok && f != math.Trunc(f) {
				cell = fmt.Sprintf("%.3f", f)
			}
			if lo, hi, ok := a.ConfidenceInterval(r, c); ok {
				cell += fmt.Sprintf("±%.3g", (hi-lo)/2)
			}
			fmt.Printf("%-18s", cell)
		}
		fmt.Println()
	}
	if len(a.Rows) > limit {
		fmt.Printf("... (%d rows total)\n", len(a.Rows))
	}
	mode := "exact"
	if a.Approximate {
		mode = "approximate (samples: " + strings.Join(a.SampleTables, ", ") + ")"
	} else if a.Status != 0 {
		mode = "exact [" + a.Status.String() + "]"
	}
	fmt.Printf("%d rows, %v, %s\n", len(a.Rows), elapsed.Round(time.Microsecond), mode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
