module verdictdb

go 1.24
