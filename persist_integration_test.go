package verdictdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
)

// Integration coverage for persistent storage at the middleware layer: the
// datadir= DSN option, sample rediscovery across restarts, and catalog
// reconciliation when recovery could not restore a sample table intact.

func TestSQLDriverDataDirPersistence(t *testing.T) {
	dir := t.TempDir()
	dsn := "dataset=none;seed=3;datadir=" + dir + ";cachemb=64"
	db := openSQL(t, dsn)
	if _, err := db.Exec("create table kv (k bigint, v double)"); err != nil {
		t.Fatal(err)
	}
	var vals []string
	for i := 0; i < 600; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %g)", i, float64(i)+0.5))
	}
	if _, err := db.Exec("insert into kv values " + strings.Join(vals, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create uniform sample of kv ratio 0.5"); err != nil {
		t.Fatal(err)
	}
	// Closing the pool releases the last reference: the engine flushes and
	// commits its manifest.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if theDriver.openDSNs() != 0 {
		t.Fatal("DSN instance not evicted on close")
	}

	re := openSQL(t, dsn)
	var n int64
	if err := re.QueryRow("bypass select count(*) from kv").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("recovered %d rows, want 600", n)
	}
	// The sample table and its catalog record survived too: an approximate
	// aggregate works without rebuilding anything.
	var c float64
	if err := re.QueryRow("select count(*) from kv").Scan(&c); err != nil {
		t.Fatal(err)
	}
	if c < 300 || c > 900 {
		t.Fatalf("approximate count %g way off 600", c)
	}
}

func TestReconcileSamplesAfterQuarantinedSample(t *testing.T) {
	dir := t.TempDir()
	sampleTable := ""
	{
		eng := engine.NewSeeded(5)
		if _, err := eng.AttachDataDir(dir); err != nil {
			t.Fatal(err)
		}
		conn, err := Open(drivers.NewGeneric(eng), Defaults())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Exec("create table t (x bigint, g string)"); err != nil {
			t.Fatal(err)
		}
		rows := make([]string, 800)
		for i := range rows {
			rows[i] = fmt.Sprintf("(%d, 'g%d')", i, i%4)
		}
		if err := conn.Exec("insert into t values " + strings.Join(rows, ", ")); err != nil {
			t.Fatal(err)
		}
		if err := conn.Exec("create uniform sample of t ratio 0.5"); err != nil {
			t.Fatal(err)
		}
		sis, err := conn.Samples()
		if err != nil || len(sis) != 1 {
			t.Fatalf("samples: %v %v", sis, err)
		}
		sampleTable = sis[0].SampleTable
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt the sample table's data segment so recovery quarantines it and
	// the recorded SampleRows no longer matches the surviving rows.
	corrupted := false
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range ents {
		if strings.HasPrefix(en.Name(), sampleTable+"-") && strings.HasSuffix(en.Name(), ".seg") {
			path := filepath.Join(dir, en.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatalf("no data segment found for sample table %s", sampleTable)
	}

	eng := engine.NewSeeded(5)
	rep, err := eng.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if len(rep.Quarantined) == 0 {
		t.Fatal("corrupted sample segment not quarantined")
	}
	conn, err := Open(drivers.NewGeneric(eng), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sis, err := conn.Samples()
	if err != nil || len(sis) != 1 {
		t.Fatalf("samples after reconcile: %v %v", sis, err)
	}
	if got, want := sis[0].SampleRows, int64(eng.RowCount(sampleTable)); got != want {
		t.Fatalf("reconciled SampleRows %d != actual %d", got, want)
	}
	if sis[0].BlockRows > 0 && sis[0].TotalBlockRows() != sis[0].SampleRows {
		t.Fatalf("block counts %v do not sum to %d", sis[0].BlockCounts, sis[0].SampleRows)
	}
	// Queries over the reconciled catalog still answer.
	if _, err := conn.Query("select count(*) from t"); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileSamplesDropsMissingTable(t *testing.T) {
	eng := engine.NewSeeded(5)
	dir := t.TempDir()
	if _, err := eng.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	conn, err := Open(drivers.NewGeneric(eng), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("create table t (x bigint)"); err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 400)
	for i := range rows {
		rows[i] = fmt.Sprintf("(%d)", i)
	}
	if err := conn.Exec("insert into t values " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("create uniform sample of t ratio 0.5"); err != nil {
		t.Fatal(err)
	}
	sis, _ := conn.Samples()
	if len(sis) != 1 {
		t.Fatalf("samples: %v", sis)
	}
	// Drop the sample table behind the catalog's back, then reconcile.
	if err := eng.DropTable(sis[0].SampleTable, false); err != nil {
		t.Fatal(err)
	}
	if err := conn.ReconcileSamples(); err != nil {
		t.Fatal(err)
	}
	if sis, _ = conn.Samples(); len(sis) != 0 {
		t.Fatalf("missing sample table not dropped from catalog: %v", sis)
	}
}
