package verdictdb

// Tests for accuracy-driven progressive execution over block-partitioned
// scrambles: full-prefix parity with Conn.Query (byte-identical rows and
// standard errors at targetRelErr=0 across the whole 33-query workload),
// early stopping, callback streaming, and concurrent-client safety.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// newWorkloadConn loads one benchmark dataset and builds its sample set
// with small scramble blocks so progressive execution has prefixes to walk.
func newWorkloadConn(t testing.TB, dataset string) *Conn {
	t.Helper()
	eng := engine.NewSeeded(42)
	var stmts []string
	switch dataset {
	case "tpch":
		if err := workload.LoadTPCH(eng, 0.05, 42); err != nil {
			t.Fatal(err)
		}
		stmts = []string{
			"create uniform sample of lineitem ratio 0.02",
			"create stratified sample of lineitem on (l_returnflag, l_linestatus) ratio 0.02",
			"create hashed sample of lineitem on (l_orderkey) ratio 0.02",
			"create uniform sample of orders ratio 0.02",
			"create hashed sample of orders on (o_orderkey) ratio 0.02",
			"create uniform sample of partsupp ratio 0.02",
			"create hashed sample of partsupp on (ps_suppkey) ratio 0.02",
		}
	case "insta":
		if err := workload.LoadInsta(eng, 0.05, 43); err != nil {
			t.Fatal(err)
		}
		stmts = []string{
			"create uniform sample of order_products ratio 0.02",
			"create hashed sample of order_products on (order_id) ratio 0.02",
			"create uniform sample of orders ratio 0.02",
			"create hashed sample of orders on (user_id) ratio 0.02",
			"create hashed sample of orders on (order_id) ratio 0.02",
			"create stratified sample of orders on (order_dow) ratio 0.02",
			"create stratified sample of orders on (order_hour) ratio 0.02",
		}
	default:
		t.Fatalf("unknown dataset %q", dataset)
	}
	conn, err := Open(drivers.NewGeneric(eng), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	conn.Builder().BlockRows = 64
	for _, s := range stmts {
		if err := conn.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return conn
}

func valueIdentical(x, y engine.Value) bool {
	xf, xok := x.(float64)
	yf, yok := y.(float64)
	if xok || yok {
		return xok && yok && math.Float64bits(xf) == math.Float64bits(yf)
	}
	return x == y
}

// assertAnswersIdentical requires byte-identical rows and standard errors.
func assertAnswersIdentical(t *testing.T, id string, want, got *Answer) {
	t.Helper()
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("%s: cols %v vs %v", id, want.Cols, got.Cols)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", id, len(want.Rows), len(got.Rows))
	}
	for r := range want.Rows {
		if len(want.Rows[r]) != len(got.Rows[r]) {
			t.Fatalf("%s row %d: width %d vs %d", id, r, len(want.Rows[r]), len(got.Rows[r]))
		}
		for c := range want.Rows[r] {
			if !valueIdentical(want.Rows[r][c], got.Rows[r][c]) {
				t.Fatalf("%s row %d col %d: %v vs %v", id, r, c, want.Rows[r][c], got.Rows[r][c])
			}
		}
	}
	if len(want.StdErr) != len(got.StdErr) {
		t.Fatalf("%s: stderr rows %d vs %d", id, len(want.StdErr), len(got.StdErr))
	}
	for r := range want.StdErr {
		for c := range want.StdErr[r] {
			if math.Float64bits(want.StdErr[r][c]) != math.Float64bits(got.StdErr[r][c]) {
				t.Fatalf("%s stderr (%d,%d): %v vs %v", id, r, c, want.StdErr[r][c], got.StdErr[r][c])
			}
		}
	}
}

// runParity asserts Query ≡ QueryWithAccuracy(targetRelErr=0) for a query
// set and returns how many queries actually took the progressive path.
func runParity(t *testing.T, conn *Conn, queries []workload.Query) int {
	t.Helper()
	progressive := 0
	for _, q := range queries {
		want, err := conn.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s Query: %v", q.ID, err)
		}
		got, err := conn.QueryWithAccuracy(q.SQL, 0)
		if err != nil {
			t.Fatalf("%s QueryWithAccuracy: %v", q.ID, err)
		}
		assertAnswersIdentical(t, q.ID, want, got)
		if got.BlocksTotal > 0 {
			if got.BlocksScanned != got.BlocksTotal {
				t.Fatalf("%s: targetRelErr=0 stopped early (%d/%d blocks)",
					q.ID, got.BlocksScanned, got.BlocksTotal)
			}
			progressive++
		}
	}
	return progressive
}

func TestProgressiveFullPrefixParityTPCH(t *testing.T) {
	conn := newWorkloadConn(t, "tpch")
	if n := runParity(t, conn, workload.TPCHQueries); n == 0 {
		t.Fatal("no TPC-H query exercised the progressive path")
	}
}

func TestProgressiveFullPrefixParityInsta(t *testing.T) {
	conn := newWorkloadConn(t, "insta")
	if n := runParity(t, conn, workload.InstaQueries); n == 0 {
		t.Fatal("no insta query exercised the progressive path")
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	conn := newWorkloadConn(t, "insta")
	const q = "select reordered, count(*) as c, avg(price) as p from order_products group by reordered"
	// A loose target must terminate before the full sample is scanned.
	a, err := conn.QueryWithAccuracy(q, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximate {
		t.Fatal("expected an approximate answer")
	}
	if a.BlocksTotal <= 1 {
		t.Fatalf("sample not block-partitioned enough for the test: %d blocks", a.BlocksTotal)
	}
	if a.BlocksScanned >= a.BlocksTotal {
		t.Fatalf("no early termination: scanned %d of %d blocks", a.BlocksScanned, a.BlocksTotal)
	}
	if got := a.MaxRelativeError(); got > 0.15 {
		t.Fatalf("stopped with estimated relative error %v > target", got)
	}
	// The early answer must still be in the right ballpark vs exact.
	exact, err := conn.Query("bypass " + q)
	if err != nil {
		t.Fatal(err)
	}
	for r := range exact.Rows {
		group := exact.Rows[r][0]
		var approx float64
		found := false
		for r2 := range a.Rows {
			if valueIdentical(a.Rows[r2][0], group) {
				approx = a.Float(r2, "c")
				found = true
			}
		}
		if !found {
			continue // a rare group can be absent from a prefix
		}
		ev, _ := engine.ToFloat(exact.Rows[r][1])
		if ev > 0 && math.Abs(approx-ev)/ev > 0.5 {
			t.Fatalf("group %v: progressive count %v vs exact %v", group, approx, ev)
		}
	}
}

func TestProgressiveCallbackStream(t *testing.T) {
	conn := newWorkloadConn(t, "insta")
	const q = "select order_hour, sum(days_since_prior) as s from orders group by order_hour"
	var updates []ProgressiveUpdate
	a, err := conn.QueryProgressive(q, 0.0001, func(u ProgressiveUpdate) bool {
		updates = append(updates, u)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no progressive updates delivered")
	}
	last := updates[len(updates)-1]
	if !last.Final {
		t.Fatal("last update not marked Final")
	}
	if last.Answer != a {
		t.Fatal("final update should carry the returned answer")
	}
	prev := 0
	for _, u := range updates {
		if u.BlocksScanned < prev {
			t.Fatalf("block prefixes not monotone: %v", updates)
		}
		prev = u.BlocksScanned
		if u.Answer == nil {
			t.Fatal("update without answer")
		}
	}

	// A callback returning false accepts the current prefix and stops.
	calls := 0
	a2, err := conn.QueryProgressive(q, 0.0000001, func(u ProgressiveUpdate) bool {
		calls++
		return u.Final // stop after the first intermediate prefix
	})
	if err != nil {
		t.Fatal(err)
	}
	if a2.BlocksTotal > 1 && a2.BlocksScanned >= a2.BlocksTotal {
		t.Fatalf("callback stop ignored: %d/%d blocks", a2.BlocksScanned, a2.BlocksTotal)
	}
}

// TestProgressiveConcurrentParity runs progressive and single-shot clients
// side by side on one connection; with -race this doubles as the data-race
// check required for the serving layer.
func TestProgressiveConcurrentParity(t *testing.T) {
	conn := newWorkloadConn(t, "insta")
	queries := workload.InstaQueries
	want := make(map[string]*Answer, len(queries))
	for _, q := range queries {
		a, err := conn.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		want[q.ID] = a
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < len(queries); i++ {
				q := queries[(i+w)%len(queries)]
				var got *Answer
				var err error
				if (i+w)%2 == 0 {
					got, err = conn.QueryWithAccuracy(q.SQL, 0)
				} else {
					// Loose-target progressive clients race the exact ones;
					// their answers are approximate, only errors matter.
					_, err = conn.QueryWithAccuracy(q.SQL, 0.2)
					if err == nil {
						got, err = conn.QueryWithAccuracy(q.SQL, 0)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("%s: %w", q.ID, err)
					return
				}
				w0 := want[q.ID]
				if len(got.Rows) != len(w0.Rows) {
					errs <- fmt.Errorf("%s: %d rows vs %d", q.ID, len(got.Rows), len(w0.Rows))
					return
				}
				for r := range w0.Rows {
					for c := range w0.Rows[r] {
						if !valueIdentical(w0.Rows[r][c], got.Rows[r][c]) {
							errs <- fmt.Errorf("%s (%d,%d): %v vs %v",
								q.ID, r, c, w0.Rows[r][c], got.Rows[r][c])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
