// Package verdictdb is a Go implementation of VerdictDB (Park, Mozafari,
// Sorenson, Wang — SIGMOD 2018): a database-agnostic approximate query
// processing (AQP) middleware. It never touches database internals;
// everything — sample construction, query approximation, and error
// estimation via the paper's variational subsampling — is expressed as
// standard SQL executed by the underlying engine.
//
// Quickstart:
//
//	eng := engine.NewSeeded(1)              // or any drivers.DB backend
//	// ... load data into eng ...
//	conn, _ := verdictdb.Open(drivers.NewGeneric(eng), verdictdb.Defaults())
//	conn.Exec("create uniform sample of lineitem ratio 0.01")
//	answer, _ := conn.Query("select l_returnflag, count(*) c from lineitem group by l_returnflag")
//	lo, hi, _ := answer.ConfidenceInterval(0, 1)
//
// Queries VerdictDB cannot speed up (Table 1 of the paper) pass through to
// the underlying engine unchanged.
package verdictdb

import (
	"context"
	"fmt"
	"strings"

	"verdictdb/internal/core"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// Answer re-exports the middleware answer type: approximate (or exact)
// rows plus standard errors, confidence intervals, and provenance.
type Answer = core.Answer

// Options re-exports the middleware options (I/O budget, confidence,
// accuracy contract, error-estimation method).
type Options = core.Options

// ProgressiveUpdate re-exports one block prefix's intermediate answer as
// delivered to QueryProgressive callbacks.
type ProgressiveUpdate = core.ProgressiveUpdate

// SampleInfo re-exports sample metadata.
type SampleInfo = meta.SampleInfo

// InternalError re-exports the contained-panic error type: a crash inside
// one query's execution surfaces as *InternalError on that query alone,
// carrying the panic value and stack, while the engine keeps serving other
// clients.
type InternalError = engine.InternalError

// ErrMemoryBudget re-exports the sentinel wrapped by every per-query
// memory-budget overrun; test with errors.Is(err, verdictdb.ErrMemoryBudget).
var ErrMemoryBudget = engine.ErrMemoryBudget

// ErrCatalogChanged re-exports the progressive-execution sentinel returned
// when sample DDL bumps the catalog version between block prefixes.
var ErrCatalogChanged = core.ErrCatalogChanged

// WithMemoryBudget returns a context carrying a per-query memory budget in
// bytes for queries run under it; it overrides Options.MemoryBudgetBytes.
func WithMemoryBudget(ctx context.Context, bytes int64) context.Context {
	return engine.WithMemoryBudget(ctx, bytes)
}

// Defaults returns the paper's default options: 2% I/O budget, 95%
// confidence, variational subsampling.
func Defaults() Options { return core.DefaultOptions() }

// Conn is a VerdictDB connection: a middleware bound to one underlying
// database. A Conn is safe for concurrent use by multiple goroutines: the
// engine serializes table mutations internally, the catalog is a versioned
// snapshot, sample DDL is serialized by the builder, and repeated query
// shapes are served from the middleware's plan/rewrite cache (invalidated
// whenever the catalog version bumps).
type Conn struct {
	db      drivers.DB
	catalog *meta.Catalog
	builder *sampling.Builder
	mw      *core.Middleware
	opts    Options
}

// Open connects VerdictDB to an underlying database. Sample metadata is
// stored inside that database, so reconnecting rediscovers prior samples.
func Open(db drivers.DB, opts Options) (*Conn, error) {
	cat, err := meta.Open(db)
	if err != nil {
		return nil, err
	}
	// An engine restored from a data directory may have recovered less than
	// the catalog remembers (crash recovery quarantines damaged segments):
	// reconcile the rediscovered sample records against the actual tables
	// before any query plans over them.
	if d, ok := db.(*drivers.Driver); ok && d.Engine().DataDirAttached() {
		if err := cat.Reconcile(sampling.BlockCol); err != nil {
			return nil, err
		}
	}
	return &Conn{
		db:      db,
		catalog: cat,
		builder: sampling.NewBuilder(db, cat),
		mw:      core.New(db, cat, opts),
		opts:    opts,
	}, nil
}

// OpenInMemory builds a fresh in-memory engine with the generic driver —
// the quickest way to try the library.
func OpenInMemory(seed int64, opts Options) (*Conn, *engine.Engine, error) {
	eng := engine.NewSeeded(seed)
	conn, err := Open(drivers.NewGeneric(eng), opts)
	if err != nil {
		return nil, nil, err
	}
	return conn, eng, nil
}

// DB exposes the underlying database handle.
func (c *Conn) DB() drivers.DB { return c.db }

// Builder exposes the sample builder for advanced control (staircase
// parameters, append maintenance).
func (c *Conn) Builder() *sampling.Builder { return c.builder }

// Middleware exposes the core middleware (benchmarks use it directly).
func (c *Conn) Middleware() *core.Middleware { return c.mw }

// Samples lists all registered samples.
func (c *Conn) Samples() ([]SampleInfo, error) { return c.catalog.List() }

// CatalogVersion returns the sample catalog's version; it bumps on every
// sample DDL and invalidates cached plans.
func (c *Conn) CatalogVersion() int64 { return c.catalog.Version() }

// CacheStats reports the plan/rewrite cache's cumulative hits and misses.
func (c *Conn) CacheStats() (hits, misses int64) { return c.mw.CacheStats() }

// ReconcileSamples re-verifies registered samples against their tables,
// dropping records for missing tables and recounting rows and block counts
// where they disagree — for callers that attach persistent storage (or
// otherwise mutate tables) after the connection was opened.
func (c *Conn) ReconcileSamples() error {
	return c.catalog.Reconcile(sampling.BlockCol)
}

// DropSample removes a sample: its catalog record first (bumping the
// catalog version, so cached plans referencing it go stale immediately),
// then the sample table itself. In-flight queries already holding a plan
// over the table fall back to exact execution when it disappears.
func (c *Conn) DropSample(sampleTable string) error {
	if err := c.catalog.Drop(sampleTable); err != nil {
		return err
	}
	stmt, err := sqlparser.Parse("drop table if exists " + sampleTable)
	if err != nil {
		return fmt.Errorf("verdictdb: bad sample table name %q: %w", sampleTable, err)
	}
	return c.db.Exec(drivers.Render(c.db, stmt))
}

// Query runs SQL through the AQP pipeline. SELECT statements with supported
// aggregates are answered approximately from samples; everything else is
// passed through to the underlying database. The VerdictDB extension
// statements are handled here:
//
//	CREATE [UNIFORM|HASHED|STRATIFIED] SAMPLE OF tbl [ON (cols)] [RATIO r]
//	SHOW SAMPLES
//	BYPASS <sql>          -- force exact execution
func (c *Conn) Query(sql string) (*Answer, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext is Query honoring ctx end to end: cancellation or a deadline
// stops the engine scan within one chunk of work, and a memory budget on ctx
// (or Options.MemoryBudgetBytes) bounds the query's engine-side allocations,
// aborting it with ErrMemoryBudget instead of OOMing the process.
func (c *Conn) QueryContext(ctx context.Context, sql string) (*Answer, error) {
	// Repeated SELECT shapes skip parse/analyze/plan/rewrite entirely: only
	// statements QuerySelect previously built can hit, so the statement
	// dispatch below is never bypassed for DDL or VerdictDB extensions.
	if a, handled, err := c.mw.QueryCachedContext(ctx, sql); handled {
		return a, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlparser.CreateSampleStmt:
		return c.createSample(s)
	case *sqlparser.ShowSamplesStmt:
		return c.showSamples()
	case *sqlparser.ExplainStmt:
		if sel, ok := s.Inner.(*sqlparser.SelectStmt); ok {
			return c.mw.Explain(ctx, sel)
		}
		return &Answer{
			Cols:       []string{"step", "detail"},
			Rows:       [][]engine.Value{{"support", "only SELECT statements are explained"}},
			Confidence: c.opts.Confidence,
		}, nil
	case *sqlparser.BypassStmt:
		if sel, ok := s.Inner.(*sqlparser.SelectStmt); ok {
			_ = sel
			rs, err := c.db.QueryContext(ctx, s.SQL)
			if err != nil {
				return nil, err
			}
			return exactToAnswer(rs, c.opts.Confidence), nil
		}
		if err := c.db.ExecContext(ctx, s.SQL); err != nil {
			return nil, err
		}
		c.mw.InvalidateStats()
		return &Answer{Confidence: c.opts.Confidence}, nil
	case *sqlparser.SelectStmt:
		return c.mw.QuerySelectContext(ctx, s, sql)
	default:
		if err := c.db.ExecContext(ctx, sql); err != nil {
			return nil, err
		}
		// DDL/DML may change base data: cached plans and row-count
		// statistics are stale.
		c.mw.InvalidateStats()
		return &Answer{Confidence: c.opts.Confidence}, nil
	}
}

// Exec is Query for statements whose result the caller ignores.
func (c *Conn) Exec(sql string) error {
	_, err := c.Query(sql)
	return err
}

// ExecContext is QueryContext for statements whose result the caller ignores.
func (c *Conn) ExecContext(ctx context.Context, sql string) error {
	_, err := c.QueryContext(ctx, sql)
	return err
}

// QueryWithAccuracy is Query with accuracy-driven progressive execution:
// when the chosen plan reads a block-partitioned sample, the scan proceeds
// block-prefix by block-prefix and stops as soon as the estimated worst
// relative error (at the connection's confidence level) is at or below
// targetRelErr. targetRelErr <= 0 disables early stopping — the full sample
// is scanned and the answer matches Query exactly. Queries whose plans
// cannot run progressively (passthrough, multi-plan merges, extreme
// statistics, count-distinct, nested aggregate blocks) behave exactly like
// Query.
func (c *Conn) QueryWithAccuracy(sql string, targetRelErr float64) (*Answer, error) {
	return c.QueryProgressive(sql, targetRelErr, nil)
}

// QueryWithAccuracyContext is QueryWithAccuracy honoring ctx. A deadline
// expiring after at least one block prefix completed returns that prefix's
// unbiased partial answer flagged Answer.Degraded() instead of an error;
// cancellation always returns ctx.Err(). Sample DDL racing the query
// surfaces as ErrCatalogChanged.
func (c *Conn) QueryWithAccuracyContext(ctx context.Context, sql string, targetRelErr float64) (*Answer, error) {
	return c.QueryProgressiveContext(ctx, sql, targetRelErr, nil)
}

// QueryProgressive is QueryWithAccuracy with a streaming callback: cb (when
// non-nil) receives each block prefix's intermediate answer as it is
// computed, then the final answer with Final set. Returning false from cb
// accepts the current prefix's accuracy and stops the scan early.
func (c *Conn) QueryProgressive(sql string, targetRelErr float64, cb func(ProgressiveUpdate) bool) (*Answer, error) {
	return c.QueryProgressiveContext(context.Background(), sql, targetRelErr, cb)
}

// QueryProgressiveContext is QueryProgressive honoring ctx; see
// QueryWithAccuracyContext for the deadline-degradation contract.
func (c *Conn) QueryProgressiveContext(ctx context.Context, sql string, targetRelErr float64, cb func(ProgressiveUpdate) bool) (*Answer, error) {
	if a, handled, err := c.mw.QueryCachedProgressiveContext(ctx, sql, targetRelErr, cb); handled {
		return a, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		return c.mw.QuerySelectProgressiveContext(ctx, sel, sql, targetRelErr, cb)
	}
	// VerdictDB extension statements and DDL/DML have no progressive form;
	// route them through the normal dispatch.
	return c.QueryContext(ctx, sql)
}

// CreateUniformSample builds a uniform sample with parameter tau.
func (c *Conn) CreateUniformSample(table string, tau float64) (SampleInfo, error) {
	return c.builder.CreateUniform(table, tau)
}

// CreateHashedSample builds a universe sample on a column.
func (c *Conn) CreateHashedSample(table, column string, tau float64) (SampleInfo, error) {
	return c.builder.CreateHashed(table, column, tau)
}

// CreateStratifiedSample builds a stratified sample on a column set.
func (c *Conn) CreateStratifiedSample(table string, columns []string, tau float64) (SampleInfo, error) {
	return c.builder.CreateStratified(table, columns, tau)
}

// CreateAutoSamples applies the default sampling policy (Appendix F).
func (c *Conn) CreateAutoSamples(table string) ([]SampleInfo, error) {
	return c.builder.CreateAuto(table)
}

func (c *Conn) createSample(s *sqlparser.CreateSampleStmt) (*Answer, error) {
	ratio := s.Ratio
	if ratio == 0 {
		ratio = 0.01 // the paper's default tau
	}
	var si SampleInfo
	var err error
	switch s.Type {
	case sqlparser.UniformSample:
		si, err = c.builder.CreateUniform(s.Table, ratio)
	case sqlparser.HashedSample:
		if len(s.Columns) != 1 {
			return nil, fmt.Errorf("verdictdb: hashed sample needs exactly one ON column")
		}
		si, err = c.builder.CreateHashed(s.Table, s.Columns[0], ratio)
	case sqlparser.StratifiedSample:
		si, err = c.builder.CreateStratified(s.Table, s.Columns, ratio)
	default:
		return nil, fmt.Errorf("verdictdb: unknown sample type")
	}
	if err != nil {
		return nil, err
	}
	return &Answer{
		Cols:       []string{"sample_table", "rows"},
		Rows:       [][]engine.Value{{si.SampleTable, si.SampleRows}},
		Confidence: c.opts.Confidence,
	}, nil
}

func (c *Conn) showSamples() (*Answer, error) {
	infos, err := c.catalog.List()
	if err != nil {
		return nil, err
	}
	a := &Answer{
		Cols:       []string{"sample_table", "base_table", "type", "ratio", "columns", "sample_rows", "base_rows", "subsamples"},
		Confidence: c.opts.Confidence,
	}
	for _, si := range infos {
		a.Rows = append(a.Rows, []engine.Value{
			si.SampleTable, si.BaseTable, si.Type.String(), si.Ratio,
			strings.Join(si.Columns, ","), si.SampleRows, si.BaseRows, si.Subsamples,
		})
	}
	return a, nil
}

// exactToAnswer wraps a bypass result. Like core's exact answers, rows are
// copied so later mutation of the ResultSet cannot corrupt the Answer.
func exactToAnswer(rs *engine.ResultSet, confidence float64) *Answer {
	rows := make([][]engine.Value, len(rs.Rows))
	for i, r := range rs.Rows {
		rows[i] = append([]engine.Value(nil), r...)
	}
	return &Answer{
		Cols:        append([]string(nil), rs.Cols...),
		Rows:        rows,
		Confidence:  confidence,
		RowsScanned: rs.RowsScanned,
	}
}
