package verdictdb

// Columnar ≡ row-view parity at the middleware level: every TPC-H and
// Insta workload query must produce byte-identical answers whether the
// engine executes through the vectorized chunk pipeline or through the
// chunk row views (SetVectorized(false)), both for exact execution
// (Conn.Query) and for progressive execution at targetRelErr=0
// (QueryWithAccuracy). With -race the concurrent leg also shakes out data
// races between chunk-sealing appends and vectorized scans.

import (
	"sync"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// newParityConn builds one workload conn and returns the engine so tests
// can toggle vectorization and parallelism.
func newParityConn(t testing.TB, dataset string, vectorized bool) (*Conn, *engine.Engine) {
	t.Helper()
	eng := engine.NewSeeded(42)
	eng.SetParallelism(1) // serial scans: float sums associate identically
	eng.SetVectorized(vectorized)
	var stmts []string
	switch dataset {
	case "tpch":
		if err := workload.LoadTPCH(eng, 0.05, 42); err != nil {
			t.Fatal(err)
		}
		stmts = []string{
			"create uniform sample of lineitem ratio 0.02",
			"create stratified sample of lineitem on (l_returnflag, l_linestatus) ratio 0.02",
			"create hashed sample of lineitem on (l_orderkey) ratio 0.02",
			"create uniform sample of orders ratio 0.02",
			"create uniform sample of partsupp ratio 0.02",
		}
	case "insta":
		if err := workload.LoadInsta(eng, 0.05, 43); err != nil {
			t.Fatal(err)
		}
		stmts = []string{
			"create uniform sample of order_products ratio 0.02",
			"create hashed sample of order_products on (order_id) ratio 0.02",
			"create uniform sample of orders ratio 0.02",
			"create stratified sample of orders on (order_dow) ratio 0.02",
		}
	default:
		t.Fatalf("unknown dataset %q", dataset)
	}
	conn, err := Open(drivers.NewGeneric(eng), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	conn.Builder().BlockRows = 64
	for _, s := range stmts {
		if err := conn.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return conn, eng
}

// runColumnarParity compares exact and progressive answers between the
// vectorized and row-view engines for a query set.
func runColumnarParity(t *testing.T, dataset string, queries []workload.Query) {
	t.Helper()
	vecConn, _ := newParityConn(t, dataset, true)
	rowConn, _ := newParityConn(t, dataset, false)
	for _, q := range queries {
		wantExact, err := rowConn.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s row-view Query: %v", q.ID, err)
		}
		gotExact, err := vecConn.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s vectorized Query: %v", q.ID, err)
		}
		assertAnswersIdentical(t, q.ID+"/exact", wantExact, gotExact)

		wantProg, err := rowConn.QueryWithAccuracy(q.SQL, 0)
		if err != nil {
			t.Fatalf("%s row-view QueryWithAccuracy: %v", q.ID, err)
		}
		gotProg, err := vecConn.QueryWithAccuracy(q.SQL, 0)
		if err != nil {
			t.Fatalf("%s vectorized QueryWithAccuracy: %v", q.ID, err)
		}
		assertAnswersIdentical(t, q.ID+"/progressive", wantProg, gotProg)
	}
}

func TestColumnarRowViewParityTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runColumnarParity(t, "tpch", workload.TPCHQueries)
}

func TestColumnarRowViewParityInsta(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runColumnarParity(t, "insta", workload.InstaQueries)
}

// TestColumnarParityUnderConcurrentAppends runs progressive and exact
// clients against the vectorized engine while another goroutine appends
// base-table batches (sealing chunks mid-scan). Answers must stay
// self-consistent; with -race this doubles as the chunk-seal race check.
func TestColumnarParityUnderConcurrentAppends(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	conn, eng := newParityConn(t, "insta", true)
	const q = "select reordered, count(*) as c, avg(price) as p from order_products group by reordered"

	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([][]engine.Value, 0, 64)
		row := []engine.Value{int64(1), int64(1), int64(1), int64(0), int64(1), 1.5}
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch = batch[:0]
			for j := 0; j < 64; j++ {
				batch = append(batch, row)
			}
			if err := eng.InsertRows("order_products", batch); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(progressive bool) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var a *Answer
				var err error
				if progressive {
					a, err = conn.QueryWithAccuracy(q, 0)
				} else {
					a, err = conn.Query(q)
				}
				if err != nil {
					errCh <- err
					return
				}
				if len(a.Rows) == 0 {
					errCh <- errEmptyAnswer
					return
				}
			}
		}(c%2 == 0)
	}
	wg.Wait()
	close(stop)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

var errEmptyAnswer = errString("empty answer under concurrent appends")

type errString string

func (e errString) Error() string { return string(e) }
