package verdictdb

// Query-lifecycle robustness tests: cooperative cancellation at random
// points across the whole 33-query workload (with goroutine-leak and
// state-corruption checks), deadline-degraded progressive answers, catalog
// drift surfacing as ErrCatalogChanged, per-query memory budgets through
// every API layer, and context propagation through database/sql. Run them
// under -race: the cancellation paths cross morsel workers.

import (
	"context"
	"database/sql"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// assertGoroutinesSettle fails the test when the goroutine count does not
// come back to (roughly) its starting point — a leaked morsel worker or
// drain goroutine would hold it up. Slack covers runtime-internal and timer
// goroutines that come and go on their own schedule.
func assertGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after cancellations\n%s", before, n, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelAtRandomPointsAcrossWorkload fires a cancel at a random point
// during every TPC-H and Instacart workload query and asserts the full
// robustness contract: the call returns promptly (well under the ~50ms
// typical bound; 300ms grace absorbs -race and scheduler jitter), the error
// is exactly context.Canceled, no goroutines leak, and the very next
// uncancelled run of the same query is byte-identical to the pre-cancel
// baseline — an aborted query leaves no half-merged state behind.
func TestCancelAtRandomPointsAcrossWorkload(t *testing.T) {
	datasets := []struct {
		name    string
		queries []workload.Query
	}{
		{"tpch", workload.TPCHQueries},
		{"insta", workload.InstaQueries},
	}
	for _, ds := range datasets {
		ds := ds
		t.Run(ds.name, func(t *testing.T) {
			conn := newWorkloadConn(t, ds.name)
			rng := rand.New(rand.NewSource(11))
			before := runtime.NumGoroutine()
			for _, q := range ds.queries {
				start := time.Now()
				baseline, err := conn.Query(q.SQL)
				if err != nil {
					t.Fatalf("%s baseline: %v", q.ID, err)
				}
				dur := time.Since(start)
				for rep := 0; rep < 2; rep++ {
					delay := time.Duration(rng.Int63n(int64(dur) + 1))
					ctx, cancel := context.WithCancel(context.Background())
					var firedAt time.Time
					timer := time.AfterFunc(delay, func() {
						firedAt = time.Now()
						cancel()
					})
					_, err := conn.QueryContext(ctx, q.SQL)
					switch {
					case err == nil:
						// The query beat the cancel; nothing to assert.
					case errors.Is(err, context.Canceled):
						// firedAt is ordered before the ctx.Done close the
						// query observed, so reading it here is race-free.
						if lag := time.Since(firedAt); lag > 300*time.Millisecond {
							t.Fatalf("%s rep %d: cancel honored after %v", q.ID, rep, lag)
						}
					default:
						t.Fatalf("%s rep %d: want nil or context.Canceled, got %v", q.ID, rep, err)
					}
					timer.Stop()
					cancel()
				}
				again, err := conn.Query(q.SQL)
				if err != nil {
					t.Fatalf("%s re-query after cancels: %v", q.ID, err)
				}
				assertAnswersIdentical(t, q.ID+" post-cancel", baseline, again)
			}
			assertGoroutinesSettle(t, before)
		})
	}
}

// TestDeadlineDegradedProgressive lets the first block prefix complete,
// then sleeps past the deadline inside the progressive callback: the next
// prefix's engine call dies with DeadlineExceeded, and the middleware must
// hand back the completed prefix's unbiased partial answer flagged
// Degraded() — not an error, and not an exact-execution fallback (which
// would invert the caller's latency intent).
func TestDeadlineDegradedProgressive(t *testing.T) {
	conn := newWorkloadConn(t, "tpch")
	const sql = "select sum(l_quantity) as s from lineitem"

	exact, err := conn.Query("bypass " + sql)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Float(0, "s")

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	sawPartial := false
	// Tiny target: accuracy is never met, so the doubling ramp keeps going
	// until the deadline cuts it off.
	a, err := conn.QueryProgressiveContext(ctx, sql, 1e-9, func(u ProgressiveUpdate) bool {
		if !u.Final {
			sawPartial = true
			time.Sleep(700 * time.Millisecond) // burn the rest of the deadline
		}
		return true
	})
	if err != nil {
		t.Fatalf("deadline mid-ramp must degrade, not error: %v", err)
	}
	if !sawPartial {
		t.Fatal("callback never saw a non-final prefix; ramp did not run")
	}
	if !a.Degraded() {
		t.Fatalf("answer not flagged degraded: %+v", a)
	}
	if !a.Approximate || a.BlocksScanned <= 0 || a.BlocksScanned >= a.BlocksTotal {
		t.Fatalf("degraded answer should be a strict block prefix: scanned %d of %d, approx=%v",
			a.BlocksScanned, a.BlocksTotal, a.Approximate)
	}
	got := a.Float(0, "s")
	if math.IsNaN(got) || math.Abs(got-want)/math.Abs(want) > 0.5 {
		t.Fatalf("partial estimate %v implausibly far from exact %v", got, want)
	}
	// Plain cancellation (no completed-prefix escape hatch) still errors.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := conn.QueryProgressiveContext(cctx, sql, 1e-9, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled progressive query: want context.Canceled, got %v", err)
	}
}

// instaConn builds an Instacart connection with small scramble blocks and a
// uniform sample, for the catalog-drift and budget tests.
func instaConn(t *testing.T) *Conn {
	t.Helper()
	eng := engine.NewSeeded(7)
	if err := workload.LoadInsta(eng, 0.05, 7); err != nil {
		t.Fatal(err)
	}
	conn, err := Open(drivers.NewGeneric(eng), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	conn.Builder().BlockRows = 64
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestProgressiveCatalogChanged performs sample DDL from inside the
// progressive callback — i.e. mid-ramp — and asserts the query dies with
// ErrCatalogChanged instead of silently mixing block layouts across catalog
// versions, and that the connection recovers on the next query.
func TestProgressiveCatalogChanged(t *testing.T) {
	conn := instaConn(t)
	const sql = "select count(*) as c from order_products"
	a, err := conn.QueryProgressiveContext(context.Background(), sql, 1e-9, func(u ProgressiveUpdate) bool {
		if !u.Final {
			if err := conn.Exec("create uniform sample of orders ratio 0.02"); err != nil {
				t.Errorf("sample DDL inside callback: %v", err)
			}
		}
		return true
	})
	if !errors.Is(err, ErrCatalogChanged) {
		t.Fatalf("want ErrCatalogChanged, got a=%v err=%v", a, err)
	}
	// The catalog bump invalidated the cached plan; a fresh run succeeds.
	a, err = conn.QueryWithAccuracyContext(context.Background(), sql, 0)
	if err != nil || !a.Approximate {
		t.Fatalf("post-drift re-query: a=%+v err=%v", a, err)
	}
}

// TestMemoryBudgetThroughConn checks both budget plumbing routes: a budget
// carried on the context, and Options.MemoryBudgetBytes (overridable
// per-query via WithMemoryBudget, including disabling with 0). A budget
// abort must surface as ErrMemoryBudget, never as a passthrough fallback.
func TestMemoryBudgetThroughConn(t *testing.T) {
	const blowup = "select user_id, count(*) as c from orders group by user_id"

	conn := instaConn(t)
	ctx := WithMemoryBudget(context.Background(), 4<<10)
	if _, err := conn.QueryContext(ctx, blowup); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("ctx budget: want ErrMemoryBudget, got %v", err)
	}
	if _, err := conn.Query(blowup); err != nil {
		t.Fatalf("same query without budget: %v", err)
	}

	opts := Defaults()
	opts.MemoryBudgetBytes = 4 << 10
	conn2, eng, err := OpenInMemory(9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.LoadInsta(eng, 0.05, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Query(blowup); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("options budget: want ErrMemoryBudget, got %v", err)
	}
	// A context budget overrides the connection default; 0 disables it.
	if _, err := conn2.QueryContext(WithMemoryBudget(context.Background(), 0), blowup); err != nil {
		t.Fatalf("ctx override off: %v", err)
	}
}

// TestSQLDriverContext drives the robustness surface through database/sql:
// QueryContext with a dead context, a live query on the same pool
// afterwards, the membudget DSN option, and BeginTx's explicit refusal.
func TestSQLDriverContext(t *testing.T) {
	db, err := sql.Open("verdictdb", "dataset=insta;scale=0.05;seed=31;samples=auto")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "select count(*) from orders"); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead ctx: want context.Canceled, got %v", err)
	}

	rows, err := db.QueryContext(context.Background(), "select count(*) from orders")
	if err != nil {
		t.Fatalf("pool must serve after a cancelled query: %v", err)
	}
	var n float64
	if !rows.Next() {
		t.Fatal("no rows")
	}
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n <= 0 {
		t.Fatalf("count = %v", n)
	}

	if _, err := db.BeginTx(context.Background(), nil); err == nil {
		t.Fatal("BeginTx should refuse: transactions are not supported")
	}

	bdb, err := sql.Open("verdictdb", "dataset=insta;scale=0.05;seed=33;membudget=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	_, err = bdb.QueryContext(context.Background(), "select user_id, count(*) from orders group by user_id")
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("membudget DSN: want ErrMemoryBudget, got %v", err)
	}
}
