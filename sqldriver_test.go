package verdictdb

import (
	"database/sql"
	"testing"
)

func openSQL(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("verdictdb", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSQLDriverBasicQuery(t *testing.T) {
	db := openSQL(t, "dataset=insta;scale=0.05;seed=7;samples=auto")
	rows, err := db.Query("select order_dow, count(*) as c from orders group by order_dow order by order_dow")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil || len(cols) != 2 {
		t.Fatalf("columns: %v %v", cols, err)
	}
	n := 0
	var total int64
	for rows.Next() {
		var dow int64
		var c float64 // approximate counts come back as floats
		if err := rows.Scan(&dow, &c); err != nil {
			t.Fatal(err)
		}
		total += int64(c)
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("dow groups: %d", n)
	}
	// ~5000 orders at scale 0.05.
	if total < 3500 || total > 6500 {
		t.Fatalf("total approx count %d", total)
	}
}

func TestSQLDriverExecAndDDL(t *testing.T) {
	db := openSQL(t, "dataset=none;seed=3")
	if _, err := db.Exec("create table kv (k string, v double)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("insert into kv values ('a', 1.5), ('b', 2.5)"); err != nil {
		t.Fatal(err)
	}
	row := db.QueryRow("bypass select sum(v) from kv")
	var s float64
	if err := row.Scan(&s); err != nil {
		t.Fatal(err)
	}
	if s != 4.0 {
		t.Fatalf("sum %v", s)
	}
}

func TestSQLDriverSharedDSN(t *testing.T) {
	// Two sql.DB handles on the same DSN share one engine.
	db1 := openSQL(t, "dataset=none;seed=5")
	db2 := openSQL(t, "dataset=none;seed=5")
	if _, err := db1.Exec("create table shared (x int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("insert into shared values (1)"); err != nil {
		t.Fatalf("second handle does not share engine: %v", err)
	}
}

func TestSQLDriverErrCols(t *testing.T) {
	db := openSQL(t, "dataset=insta;scale=0.05;seed=9;samples=auto;errcols=1")
	rows, err := db.Query("select count(*) as c from order_products")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	found := false
	for _, c := range cols {
		if c == "c_err" {
			found = true
		}
	}
	if !found {
		t.Fatalf("errcols=1 but columns are %v", cols)
	}
}

func TestSQLDriverBadDSN(t *testing.T) {
	db, err := sql.Open("verdictdb", "nonsense")
	if err == nil {
		// sql.Open defers driver errors to first use.
		if _, err := db.Query("select 1"); err == nil {
			t.Fatal("bad DSN accepted")
		}
		db.Close()
	}
}

func TestSQLDriverNoTransactions(t *testing.T) {
	db := openSQL(t, "dataset=none;seed=11")
	if _, err := db.Begin(); err == nil {
		t.Fatal("Begin should fail")
	}
}

// TestSQLDriverInstanceRelease is the regression test for the engine leak:
// each distinct DSN pins its engine only while driver connections are open;
// closing the last connection releases the instance.
func TestSQLDriverInstanceRelease(t *testing.T) {
	baseline := theDriver.openDSNs()
	db1, err := sql.Open("verdictdb", "dataset=none;seed=101")
	if err != nil {
		t.Fatal(err)
	}
	db2, err := sql.Open("verdictdb", "dataset=none;seed=102")
	if err != nil {
		t.Fatal(err)
	}
	// Force real driver connections (sql.Open is lazy).
	if _, err := db1.Exec("create table a (x int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("create table b (x int)"); err != nil {
		t.Fatal(err)
	}
	if got := theDriver.openDSNs(); got != baseline+2 {
		t.Fatalf("open DSN instances: %d, want %d", got, baseline+2)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := theDriver.openDSNs(); got != baseline+1 {
		t.Fatalf("after first close: %d instances, want %d", got, baseline+1)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := theDriver.openDSNs(); got != baseline {
		t.Fatalf("after last close: %d instances, want %d (engine leaked)", got, baseline)
	}

	// Reopening the DSN after release builds a fresh engine (the old one was
	// released, so its tables are gone).
	db3, err := sql.Open("verdictdb", "dataset=none;seed=101")
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if _, err := db3.Exec("create table a (x int)"); err != nil {
		t.Fatalf("fresh engine should not have old tables: %v", err)
	}
}

// TestSQLDriverSharedDSNRefcount: two handles on one DSN pin a single
// instance, released only when both close.
func TestSQLDriverSharedDSNRefcount(t *testing.T) {
	baseline := theDriver.openDSNs()
	db1, _ := sql.Open("verdictdb", "dataset=none;seed=103")
	db2, _ := sql.Open("verdictdb", "dataset=none;seed=103")
	if _, err := db1.Exec("create table shared_rc (x int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("insert into shared_rc values (1)"); err != nil {
		t.Fatal(err)
	}
	if got := theDriver.openDSNs(); got != baseline+1 {
		t.Fatalf("shared DSN instances: %d, want %d", got, baseline+1)
	}
	db1.Close()
	if got := theDriver.openDSNs(); got != baseline+1 {
		t.Fatalf("instance released while second handle still open: %d", got)
	}
	db2.Close()
	if got := theDriver.openDSNs(); got != baseline {
		t.Fatalf("instance not released after both closed: %d, want %d", got, baseline)
	}
}

func TestSQLDriverProgressiveTarget(t *testing.T) {
	// The target= DSN option routes SELECTs through progressive execution;
	// legacy database/sql readers get anytime answers transparently.
	db, err := sql.Open("verdictdb", "dataset=insta;scale=0.05;samples=auto;target=0.2")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows, err := db.Query("select reordered, count(*) as c from order_products group by reordered")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		var reordered, c int64
		if err := rows.Scan(&reordered, &c); err != nil {
			t.Fatal(err)
		}
		if c <= 0 {
			t.Fatalf("non-positive count %d", c)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows")
	}
}
