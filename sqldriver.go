package verdictdb

// database/sql integration: VerdictDB registers itself as a driver named
// "verdictdb", so existing Go applications can consume approximate answers
// through the standard library's interfaces without code changes — the
// paper's "transparent mode" (Section 2.4) for legacy applications. Error
// estimates stay out of the result set unless the connection is opened with
// errcols=1, mirroring the paper's default of not disturbing legacy readers.
//
//	db, _ := sql.Open("verdictdb", "dataset=insta;scale=0.1;samples=auto")
//	rows, _ := db.Query("select order_dow, count(*) from orders group by order_dow")
//
// Because the engine is in-process, each distinct DSN maps to one shared
// engine instance; opening the same DSN twice shares data and samples. The
// instances are reference-counted per driver connection: when database/sql
// closes the last pooled connection for a DSN (db.Close, pool eviction),
// the engine is released and its memory becomes collectible. The driver and
// its connections are safe for the standard library's concurrent use.

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// theDriver is the registered driver instance (package-level so tests can
// observe the instance table).
var theDriver = &sqlDriver{instances: map[string]*dsnInstance{}}

func init() {
	sql.Register("verdictdb", theDriver)
}

// dsnInstance is one shared engine pinned by refs open driver connections.
type dsnInstance struct {
	conn *Conn
	eng  *engine.Engine
	// target is the DSN's progressive-execution target relative error;
	// 0 means plain single-shot Query.
	target float64
	refs   int //verdict:guardedby sqlDriver.mu
}

type sqlDriver struct {
	mu        sync.Mutex
	instances map[string]*dsnInstance
}

// Open implements driver.Driver. DSN options (semicolon-separated):
//
//	dataset=insta|tpch|none   bundled dataset to load (default none)
//	scale=0.1                 dataset scale factor
//	seed=42                   engine seed
//	samples=auto              build 1% uniform samples on fact tables
//	errcols=1                 append <col>_err columns to outputs
//	target=0.05               progressive execution: stop scanning once the
//	                          estimated relative error reaches the target
//	membudget=268435456       per-query memory budget in bytes; overruns
//	                          abort the query with ErrMemoryBudget
//	datadir=/path/to/dir      persistent storage: segments + manifest live
//	                          here; reopening the DSN recovers tables and
//	                          samples (skips dataset loading when the
//	                          directory already holds tables)
//	cachemb=256               decoded-chunk cache budget in MiB for
//	                          segment-backed scans (with datadir)
func (d *sqlDriver) Open(dsn string) (driver.Conn, error) {
	d.mu.Lock()
	inst, ok := d.instances[dsn]
	if ok {
		inst.refs++
		d.mu.Unlock()
		return &sqlConn{driver: d, dsn: dsn, conn: inst.conn, target: inst.target}, nil
	}
	d.mu.Unlock()

	// Building an engine can load a whole dataset; do it outside the lock
	// so other DSNs stay usable meanwhile.
	conn, eng, target, err := buildFromDSN(dsn)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	var loser *engine.Engine
	if inst, ok = d.instances[dsn]; ok {
		// Another goroutine built the same DSN concurrently; keep the first
		// instance so all connections share data and samples, and close the
		// duplicate engine (it may hold segment files open).
		inst.refs++
		loser = eng
	} else {
		inst = &dsnInstance{conn: conn, eng: eng, target: target, refs: 1}
		d.instances[dsn] = inst
	}
	c := &sqlConn{driver: d, dsn: dsn, conn: inst.conn, target: inst.target}
	d.mu.Unlock()
	if loser != nil {
		_ = loser.Close()
	}
	return c, nil
}

// release drops one reference to a DSN's engine, evicting the instance when
// the last driver connection closes. Evicted engines are closed (final
// flush, manifest commit, segment handles released) outside the lock so a
// slow fsync cannot stall other DSNs.
func (d *sqlDriver) release(dsn string) {
	d.mu.Lock()
	var evicted *engine.Engine
	if inst, ok := d.instances[dsn]; ok {
		inst.refs--
		if inst.refs <= 0 {
			delete(d.instances, dsn)
			evicted = inst.eng
		}
	}
	d.mu.Unlock()
	if evicted != nil {
		_ = evicted.Close()
	}
}

// openDSNs reports how many DSN instances are currently pinned (tests).
func (d *sqlDriver) openDSNs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.instances)
}

func buildFromDSN(dsn string) (*Conn, *engine.Engine, float64, error) {
	opts := Defaults()
	dataset := "none"
	scale := 0.1
	seed := int64(42)
	samples := ""
	target := 0.0
	datadir := ""
	cacheMB := int64(-1)
	for _, kv := range strings.Split(dsn, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, nil, 0, fmt.Errorf("verdictdb: bad DSN option %q", kv)
		}
		key, val := strings.ToLower(parts[0]), parts[1]
		switch key {
		case "dataset":
			dataset = strings.ToLower(val)
		case "scale":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad scale %q", val)
			}
			scale = f
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad seed %q", val)
			}
			seed = n
		case "samples":
			samples = strings.ToLower(val)
		case "errcols":
			opts.ErrorColumns = val == "1" || strings.EqualFold(val, "true")
		case "budget":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad budget %q", val)
			}
			opts.IOBudget = f
			opts.Planner.IOBudget = f
		case "target":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad target %q", val)
			}
			target = f
		case "membudget":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad membudget %q", val)
			}
			opts.MemoryBudgetBytes = n
		case "datadir":
			datadir = val
		case "cachemb":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, nil, 0, fmt.Errorf("verdictdb: bad cachemb %q", val)
			}
			cacheMB = n
		default:
			return nil, nil, 0, fmt.Errorf("verdictdb: unknown DSN option %q", key)
		}
	}
	eng := engine.NewSeeded(seed)
	recovered := false
	if datadir != "" {
		rep, err := eng.AttachDataDir(datadir)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("verdictdb: opening datadir %s: %w", datadir, err)
		}
		recovered = rep.Tables > 0
	}
	if cacheMB >= 0 {
		eng.SetChunkCacheBytes(cacheMB << 20)
	}
	var facts []string
	switch dataset {
	case "insta":
		facts = workload.InstaFactTables
		if !recovered {
			if err := workload.LoadInsta(eng, scale, seed); err != nil {
				return nil, nil, 0, err
			}
		}
	case "tpch":
		facts = workload.TPCHFactTables
		if !recovered {
			if err := workload.LoadTPCH(eng, scale, seed); err != nil {
				return nil, nil, 0, err
			}
		}
	case "none":
	default:
		return nil, nil, 0, fmt.Errorf("verdictdb: unknown dataset %q", dataset)
	}
	conn, err := Open(drivers.NewGeneric(eng), opts)
	if err != nil {
		return nil, nil, 0, err
	}
	if samples == "auto" {
		existing, _ := conn.Samples()
		if !recovered || len(existing) == 0 {
			for _, tbl := range facts {
				if err := conn.Exec(fmt.Sprintf("create uniform sample of %s ratio 0.01", tbl)); err != nil {
					return nil, nil, 0, err
				}
			}
		}
	}
	return conn, eng, target, nil
}

// sqlConn adapts Conn to driver.Conn. VerdictDB has no transactions; Begin
// returns an error, and prepared statements capture the SQL verbatim
// (placeholders are not supported — AQP queries are analytic one-offs).
// Closing releases this connection's reference on the shared DSN engine.
type sqlConn struct {
	driver *sqlDriver
	dsn    string
	conn   *Conn
	// target routes SELECTs through QueryWithAccuracy when > 0 (the DSN's
	// target= option): legacy readers get anytime answers transparently.
	target float64

	mu     sync.Mutex
	closed bool
}

var (
	_ driver.Conn               = (*sqlConn)(nil)
	_ driver.Queryer            = (*sqlConn)(nil) //nolint:staticcheck // Queryer is the pre-context interface
	_ driver.Execer             = (*sqlConn)(nil) //nolint:staticcheck
	_ driver.QueryerContext     = (*sqlConn)(nil)
	_ driver.ExecerContext      = (*sqlConn)(nil)
	_ driver.ConnBeginTx        = (*sqlConn)(nil)
	_ driver.ConnPrepareContext = (*sqlConn)(nil)
	_ driver.StmtQueryContext   = (*sqlStmt)(nil)
	_ driver.StmtExecContext    = (*sqlStmt)(nil)
)

func (c *sqlConn) Prepare(query string) (driver.Stmt, error) {
	return &sqlStmt{conn: c.conn, query: query, target: c.target}, nil
}

func (c *sqlConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.driver.release(c.dsn)
	return nil
}

func (c *sqlConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("verdictdb: transactions are not supported")
}

// BeginTx implements driver.ConnBeginTx; without it database/sql would fall
// back to Begin and silently drop the caller's context and isolation options.
func (c *sqlConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	return nil, fmt.Errorf("verdictdb: transactions are not supported")
}

// PrepareContext implements driver.ConnPrepareContext (preparation itself is
// instant — the SQL is captured verbatim — but the statement's later
// QueryContext/ExecContext honor their own contexts).
func (c *sqlConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &sqlStmt{conn: c.conn, query: query, target: c.target}, nil
}

// Query implements driver.Queryer.
func (c *sqlConn) Query(query string, args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	a, err := queryMaybeProgressive(c.conn, query, c.target)
	if err != nil {
		return nil, err
	}
	return newSQLRows(a), nil
}

// Exec implements driver.Execer.
func (c *sqlConn) Exec(query string, args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if err := c.conn.Exec(query); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// QueryContext implements driver.QueryerContext: db.QueryContext cancels and
// deadlines propagate into the engine scan instead of only abandoning the
// result.
func (c *sqlConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	a, err := queryMaybeProgressiveContext(ctx, c.conn, query, c.target)
	if err != nil {
		return nil, err
	}
	return newSQLRows(a), nil
}

// ExecContext implements driver.ExecerContext.
func (c *sqlConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if err := c.conn.ExecContext(ctx, query); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

type sqlStmt struct {
	conn   *Conn
	query  string
	target float64
}

// queryMaybeProgressive runs one statement, with accuracy-driven early
// stopping when the DSN configured a target relative error.
func queryMaybeProgressive(conn *Conn, query string, target float64) (*Answer, error) {
	return queryMaybeProgressiveContext(context.Background(), conn, query, target)
}

func queryMaybeProgressiveContext(ctx context.Context, conn *Conn, query string, target float64) (*Answer, error) {
	if target > 0 {
		return conn.QueryWithAccuracyContext(ctx, query, target)
	}
	return conn.QueryContext(ctx, query)
}

func (s *sqlStmt) Close() error  { return nil }
func (s *sqlStmt) NumInput() int { return 0 }

func (s *sqlStmt) Exec(args []driver.Value) (driver.Result, error) {
	if err := s.conn.Exec(s.query); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

func (s *sqlStmt) Query(args []driver.Value) (driver.Rows, error) {
	a, err := queryMaybeProgressive(s.conn, s.query, s.target)
	if err != nil {
		return nil, err
	}
	return newSQLRows(a), nil
}

// QueryContext implements driver.StmtQueryContext.
func (s *sqlStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	a, err := queryMaybeProgressiveContext(ctx, s.conn, s.query, s.target)
	if err != nil {
		return nil, err
	}
	return newSQLRows(a), nil
}

// ExecContext implements driver.StmtExecContext.
func (s *sqlStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if err := s.conn.ExecContext(ctx, s.query); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// sqlRows adapts an Answer to driver.Rows.
type sqlRows struct {
	answer *Answer
	pos    int
}

func newSQLRows(a *Answer) *sqlRows { return &sqlRows{answer: a} }

func (r *sqlRows) Columns() []string { return r.answer.Cols }
func (r *sqlRows) Close() error      { return nil }

func (r *sqlRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.answer.Rows) {
		return io.EOF
	}
	row := r.answer.Rows[r.pos]
	r.pos++
	for i := range dest {
		if i < len(row) {
			dest[i] = row[i]
		} else {
			dest[i] = nil
		}
	}
	return nil
}
