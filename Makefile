GO ?= go

.PHONY: build test test-par bench bench-json bench-gate bench-serve bench-serve-robust bench-progressive race faultinject vet lint staticcheck

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Same suite pinned to 4 scheduler threads, so the chunk-morsel fan-out and
# the parallel≡serial equivalence tests actually exercise multiple workers.
test-par: build
	GOMAXPROCS=4 $(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault injection (internal/faultpoint sites) under -race.
faultinject:
	$(GO) test -race -tags faultinject ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (internal/lint) run through the standard vet
# driver. Fails on any diagnostic; see README "Static analysis & invariants".
lint:
	$(GO) build -o bin/verdictlint ./cmd/verdictlint
	$(GO) vet -vettool=$(CURDIR)/bin/verdictlint ./...

# Third-party static analysis, pinned. Needs network/module cache, so this is
# a CI (or online-dev) target, not part of the offline default loop.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

# Engine hot-path microbenchmarks (compare against a previous checkout with
# benchstat, or diff the JSON from `make bench-json`).
bench:
	$(GO) test -run=- -bench 'E1' -benchmem ./internal/engine

# Machine-readable engine perf numbers for cross-PR diffs.
bench-json:
	$(GO) run ./cmd/benchrunner -exp engine -benchout BENCH_engine.json

# Variance-aware perf regression gate: re-measure the engine suite and
# compare against the committed BENCH_engine.json. Wall-clock ratios get
# generous limits (single-run jitter), allocation counts tight ones
# (near-deterministic); see internal/bench/gate.go for the thresholds.
bench-gate:
	$(GO) run ./cmd/benchrunner -exp engine -benchout /tmp/verdict_bench_gate_engine.json
	$(GO) run ./cmd/benchgate -kind engine -base BENCH_engine.json -cand /tmp/verdict_bench_gate_engine.json

# Serving-layer throughput: concurrent clients + plan/rewrite cache.
bench-serve:
	$(GO) run ./cmd/benchrunner -exp serve -serveout BENCH_serve.json

# Serving under pressure: per-query deadlines (degraded progressive answers)
# plus randomly injected mid-flight cancels.
bench-serve-robust:
	$(GO) run ./cmd/benchrunner -exp serve -deadline 25 -cancel-rate 0.2 -serveout BENCH_serve_robust.json

# Progressive execution: time-to-accuracy over block-partitioned scrambles.
bench-progressive:
	$(GO) run ./cmd/benchrunner -exp progressive -progout BENCH_progressive.json
