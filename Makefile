GO ?= go

.PHONY: build test test-par bench bench-json bench-serve bench-serve-robust bench-progressive race faultinject vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Same suite pinned to 4 scheduler threads, so the chunk-morsel fan-out and
# the parallel≡serial equivalence tests actually exercise multiple workers.
test-par: build
	GOMAXPROCS=4 $(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault injection (internal/faultpoint sites) under -race.
faultinject:
	$(GO) test -race -tags faultinject ./...

vet:
	$(GO) vet ./...

# Engine hot-path microbenchmarks (compare against a previous checkout with
# benchstat, or diff the JSON from `make bench-json`).
bench:
	$(GO) test -run=- -bench 'E1' -benchmem ./internal/engine

# Machine-readable engine perf numbers for cross-PR diffs.
bench-json:
	$(GO) run ./cmd/benchrunner -exp engine -benchout BENCH_engine.json

# Serving-layer throughput: concurrent clients + plan/rewrite cache.
bench-serve:
	$(GO) run ./cmd/benchrunner -exp serve -serveout BENCH_serve.json

# Serving under pressure: per-query deadlines (degraded progressive answers)
# plus randomly injected mid-flight cancels.
bench-serve-robust:
	$(GO) run ./cmd/benchrunner -exp serve -deadline 25 -cancel-rate 0.2 -serveout BENCH_serve_robust.json

# Progressive execution: time-to-accuracy over block-partitioned scrambles.
bench-progressive:
	$(GO) run ./cmd/benchrunner -exp progressive -progout BENCH_progressive.json
